//! `soap-lint` — workspace source-level determinism lints.
//!
//! The engine's determinism contract (bit-exact output for any thread budget,
//! NaN-total comparisons, documented operational surface) is enforced here as
//! a static pass over the source tree: plain `std` scanning, no parser, no
//! external dependencies.  Comments and string literals are masked before
//! pattern matching, so the rules see only code.
//!
//! Rules (names usable in allow markers):
//!
//! * `partial-cmp`    — raw `.partial_cmp(` is forbidden; route float
//!   comparisons through `soap_symbolic::nan_last` (the one site defining the
//!   NaN total order carries the justification marker).
//! * `instant-now`    — `Instant::now()` is forbidden outside `deadline.rs` /
//!   `perf*` files: wall-clock reads are non-deterministic by nature and must
//!   be confined to the deadline governor and perf instrumentation.
//! * `unwrap-expect`  — `.unwrap()` / `.expect(` in non-test library code is
//!   forbidden; return typed errors, or justify the panic site with a marker.
//! * `hashmap-iter`   — `HashMap` iteration in a file that serializes output
//!   is flagged: hash order is arbitrary, so iterate sorted (or justify that
//!   the consumer canonicalizes).
//! * `env-docs`       — every `SOAP_*` name mentioned in non-test code must
//!   appear in `docs/OPERATIONS.md`; the operational surface stays documented.
//! * `bad-marker`     — an allow marker naming an unknown rule or carrying no
//!   justification is itself a violation.
//!
//! Suppression: `// lint:allow(<rule>): <justification>` covers its own line
//! and the next; `// lint:allow-file(<rule>): <justification>` covers the
//! whole file.  Justifications are mandatory — the allowlist is the audit
//! trail.
//!
//! Exit status: 0 when clean, 1 when violations were found (or `--self-check`
//! failed), 2 on usage/IO errors.

#![forbid(unsafe_code)]

// lint:allow-file(env-docs): the SOAP_SELF_CHECK_* names below are synthetic
// fixture vocabulary for --self-check, not real knobs anyone can set.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Every rule the scanner knows, in reporting order.
const RULES: [&str; 6] = [
    "partial-cmp",
    "instant-now",
    "unwrap-expect",
    "hashmap-iter",
    "env-docs",
    "bad-marker",
];

/// One finding: file, 1-based line, rule, human message.
struct Violation {
    rel: String,
    line: usize,
    rule: &'static str,
    msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.rel, self.line, self.rule, self.msg
        )
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut self_check = false;
    let mut explicit: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("soap-lint: --root needs a directory");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            "--self-check" => self_check = true,
            "--help" | "-h" => {
                println!(
                    "usage: soap-lint [--root DIR] [--self-check] [FILE.rs ...]\n\
                     Scans crates/**/*.rs under DIR (default .) and checks the\n\
                     determinism lint rules; see crates/lint/src/main.rs docs."
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("soap-lint: unknown flag {other}");
                return ExitCode::from(2);
            }
            file => explicit.push(PathBuf::from(file)),
        }
        i += 1;
    }

    if self_check {
        return run_self_check(&root);
    }

    let files = if explicit.is_empty() {
        match walk_workspace(&root) {
            Ok(files) => files,
            Err(e) => {
                eprintln!("soap-lint: walking {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        explicit
    };
    if files.is_empty() {
        eprintln!("soap-lint: no .rs files found under {}", root.display());
        return ExitCode::from(2);
    }

    let docs = match std::fs::read_to_string(root.join("docs/OPERATIONS.md")) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("soap-lint: reading docs/OPERATIONS.md: {e}");
            return ExitCode::from(2);
        }
    };

    let mut violations = Vec::new();
    let mut env_reads: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for path in &files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("soap-lint: reading {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let file = SourceFile::parse(&rel, &source);
        violations.extend(file.lint(&mut env_reads));
    }
    violations.extend(check_env_docs(&env_reads, &docs));

    report(&mut violations, files.len())
}

/// Print findings sorted by file/line and return the process exit status.
fn report(violations: &mut [Violation], n_files: usize) -> ExitCode {
    violations.sort_by(|a, b| (&a.rel, a.line).cmp(&(&b.rel, b.line)));
    for v in violations.iter() {
        println!("{v}");
    }
    if violations.is_empty() {
        println!("soap-lint: {n_files} files clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "soap-lint: {} violation(s) in {n_files} files",
            violations.len()
        );
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// All `.rs` files under `root/crates`, skipping build output, VCS state, and
/// the lint fixtures (which contain deliberate violations).
fn walk_workspace(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let crates = root.join("crates");
    let mut files = Vec::new();
    let mut stack = vec![crates];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if name == "target" || name == "fixtures" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

// ---------------------------------------------------------------------------
// Per-file model: masked lines, test region, allow markers
// ---------------------------------------------------------------------------

struct SourceFile<'a> {
    rel: &'a str,
    /// Raw source lines (markers + env names live in comments/strings).
    raw: Vec<&'a str>,
    /// Lines with comments and string/char literals blanked out.
    masked: Vec<String>,
    /// Index of the first `#[cfg(test)]` line; code at/after it is test code.
    test_start: usize,
    /// `lint:allow(rule)` markers: line index -> rules allowed there.
    line_allows: BTreeMap<usize, Vec<&'static str>>,
    /// `lint:allow-file(rule)` markers.
    file_allows: BTreeSet<&'static str>,
    /// Malformed markers found while parsing (reported as `bad-marker`).
    marker_violations: Vec<(usize, String)>,
}

impl<'a> SourceFile<'a> {
    fn parse(rel: &'a str, source: &'a str) -> SourceFile<'a> {
        let raw: Vec<&str> = source.lines().collect();
        let Scanned { masked, comments } = scan_source(source);
        debug_assert_eq!(raw.len(), masked.len());
        let test_start = masked
            .iter()
            .position(|l| l.contains("#[cfg(test)]"))
            .unwrap_or(usize::MAX);
        let mut line_allows: BTreeMap<usize, Vec<&'static str>> = BTreeMap::new();
        let mut file_allows = BTreeSet::new();
        let mut marker_violations = Vec::new();
        for (i, comment) in comments.iter().enumerate() {
            // A marker must BEGIN the comment text, so prose that merely
            // mentions the grammar (like this file's docs) is not parsed.
            let text = comment.trim();
            let (rest, file_wide) = if let Some(r) = text.strip_prefix("lint:allow-file(") {
                (r, true)
            } else if let Some(r) = text.strip_prefix("lint:allow(") {
                (r, false)
            } else {
                continue;
            };
            match parse_marker(rest) {
                Ok(rule) => {
                    if file_wide {
                        file_allows.insert(rule);
                    } else {
                        line_allows.entry(i).or_default().push(rule);
                    }
                }
                Err(why) => marker_violations.push((i, why)),
            }
        }
        SourceFile {
            rel,
            raw,
            masked,
            test_start,
            line_allows,
            file_allows,
            marker_violations,
        }
    }

    /// Whole file is test/bench support (never linted for code rules).
    fn is_test_file(&self) -> bool {
        self.rel
            .split('/')
            .any(|c| c == "tests" || c == "benches" || c == "examples")
    }

    /// Library code: under a `src/` component, excluding binary entry points.
    fn is_library_code(&self) -> bool {
        let parts: Vec<&str> = self.rel.split('/').collect();
        parts.contains(&"src") && !parts.contains(&"bin") && parts.last() != Some(&"main.rs")
    }

    fn in_test_region(&self, line: usize) -> bool {
        line >= self.test_start
    }

    fn allowed(&self, rule: &'static str, line: usize) -> bool {
        if self.file_allows.contains(rule) {
            return true;
        }
        let covers = |i: usize| {
            self.line_allows
                .get(&i)
                .is_some_and(|rules| rules.contains(&rule))
        };
        covers(line) || (line > 0 && covers(line - 1))
    }

    fn push(&self, out: &mut Vec<Violation>, rule: &'static str, line: usize, msg: String) {
        if !self.allowed(rule, line) {
            out.push(Violation {
                rel: self.rel.to_string(),
                line: line + 1,
                rule,
                msg,
            });
        }
    }

    /// Run every code rule over this file, feeding `SOAP_*` mentions into
    /// `env_reads` for the workspace-level docs cross-check.
    fn lint(&self, env_reads: &mut BTreeMap<String, (String, usize)>) -> Vec<Violation> {
        let mut out = Vec::new();
        for (line, why) in &self.marker_violations {
            // Malformed markers are reported even in test files: the marker
            // grammar is the allowlist's audit trail everywhere.
            self.push(&mut out, "bad-marker", *line, why.clone());
        }
        if self.is_test_file() {
            return out;
        }
        let serializes = self.masked.iter().any(|l| {
            l.contains("serde_json")
                || l.contains("Serialize")
                || l.contains("to_writer")
                || l.contains("Value::")
        });
        let map_names = if serializes {
            hashmap_names(&self.masked)
        } else {
            Vec::new()
        };
        for (i, masked) in self.masked.iter().enumerate() {
            if !self.in_test_region(i) {
                self.rule_partial_cmp(&mut out, i, masked);
                self.rule_instant_now(&mut out, i, masked);
                self.rule_unwrap_expect(&mut out, i, masked);
                self.rule_hashmap_iter(&mut out, i, masked, &map_names);
                if !self.allowed("env-docs", i) {
                    collect_env_mentions(self.rel, i, self.raw[i], env_reads);
                }
            }
        }
        out
    }

    fn rule_partial_cmp(&self, out: &mut Vec<Violation>, i: usize, masked: &str) {
        if masked.contains(".partial_cmp(") {
            self.push(
                out,
                "partial-cmp",
                i,
                "raw .partial_cmp() — float comparisons must route through \
                 soap_symbolic::nan_last for a NaN total order"
                    .to_string(),
            );
        }
    }

    fn rule_instant_now(&self, out: &mut Vec<Violation>, i: usize, masked: &str) {
        let base = self.rel.rsplit('/').next().unwrap_or(self.rel);
        if base == "deadline.rs" || base.starts_with("perf") {
            return;
        }
        if masked.contains("Instant::now") {
            self.push(
                out,
                "instant-now",
                i,
                "wall-clock read outside deadline.rs/perf* — time-dependent \
                 logic breaks run-to-run determinism"
                    .to_string(),
            );
        }
    }

    fn rule_unwrap_expect(&self, out: &mut Vec<Violation>, i: usize, masked: &str) {
        if !self.is_library_code() {
            return;
        }
        for pat in [".unwrap()", ".expect("] {
            if masked.contains(pat) {
                self.push(
                    out,
                    "unwrap-expect",
                    i,
                    format!(
                        "{pat} in library code — return a typed error, or \
                         justify the panic with a lint:allow marker"
                    ),
                );
            }
        }
    }

    fn rule_hashmap_iter(
        &self,
        out: &mut Vec<Violation>,
        i: usize,
        masked: &str,
        map_names: &[String],
    ) {
        if masked.contains("sort") || masked.contains("BTree") {
            return; // canonicalized on the same line
        }
        for name in map_names {
            let iterates = masked.contains(&format!("{name}.iter()"))
                || masked.contains(&format!("{name}.keys()"))
                || masked.contains(&format!("{name}.values()"))
                || masked.contains(&format!("in &{name} "))
                || masked.ends_with(&format!("in &{name} {{"));
            if iterates {
                self.push(
                    out,
                    "hashmap-iter",
                    i,
                    format!(
                        "iterating HashMap `{name}` in a file that serializes \
                         output — hash order is arbitrary; sort first or \
                         justify that the consumer canonicalizes"
                    ),
                );
            }
        }
    }
}

/// `rest` is everything after `lint:allow(` / `lint:allow-file(`; returns the
/// (static) rule name or a description of what is wrong with the marker.
fn parse_marker(rest: &str) -> Result<&'static str, String> {
    let Some(close) = rest.find(')') else {
        return Err("allow marker is missing the closing ')'".to_string());
    };
    let rule = rest[..close].trim();
    let Some(rule) = RULES.iter().find(|r| **r == rule) else {
        return Err(format!(
            "allow marker names unknown rule '{rule}' (known: {})",
            RULES.join(", ")
        ));
    };
    let after = rest[close + 1..].trim_start();
    let justification = after.strip_prefix(':').map(str::trim).unwrap_or("");
    if justification.len() < 10 {
        return Err(format!(
            "allow marker for '{rule}' needs a real justification \
             (`lint:allow({rule}): why this is sound`)"
        ));
    }
    Ok(rule)
}

/// Identifiers bound to a `HashMap` in this file: `let [mut] NAME … HashMap`
/// bindings and `NAME: HashMap<` field/param declarations.
fn hashmap_names(masked: &[String]) -> Vec<String> {
    let mut names = BTreeSet::new();
    for line in masked {
        if !line.contains("HashMap") {
            continue;
        }
        let t = line.trim_start();
        if let Some(rest) = t.strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                names.insert(name);
            }
        } else if let Some(colon) = t.find(": HashMap<") {
            let name = &t[..colon];
            if !name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                names.insert(name.to_string());
            }
        }
    }
    names.into_iter().collect()
}

/// Record every concrete `SOAP_*` name mentioned on a non-test raw line.
fn collect_env_mentions(
    rel: &str,
    line: usize,
    raw: &str,
    env_reads: &mut BTreeMap<String, (String, usize)>,
) {
    for name in soap_tokens(raw) {
        env_reads
            .entry(name)
            .or_insert_with(|| (rel.to_string(), line + 1));
    }
}

/// Maximal `SOAP_[A-Z0-9_]*` runs in `text`.  A trailing `_` means a prefix
/// under construction (e.g. `SOAP_SERVE_` + flag name), not a concrete
/// variable name, and is skipped; so is a run that is the tail of a longer
/// identifier.
fn soap_tokens(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(at) = text[i..].find("SOAP_") {
        let start = i + at;
        let mut end = start;
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        let is_start =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let name = &text[start..end];
        if is_start && !name.ends_with('_') {
            out.push(name.to_string());
        }
        i = end.max(start + 1);
    }
    out
}

/// The workspace-level half of `env-docs`: every mentioned name must appear
/// in `docs/OPERATIONS.md`.
fn check_env_docs(env_reads: &BTreeMap<String, (String, usize)>, docs: &str) -> Vec<Violation> {
    let documented: BTreeSet<String> = soap_tokens(docs).into_iter().collect();
    env_reads
        .iter()
        .filter(|(name, _)| !documented.contains(*name))
        .map(|(name, (rel, line))| Violation {
            rel: rel.clone(),
            line: *line,
            rule: "env-docs",
            msg: format!("{name} is read here but not documented in docs/OPERATIONS.md"),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Source scanning: one pass builds two parallel views of the file — `masked`
// (comments and string/char literals blanked, so rules see only code) and
// `comments` (comment text only, where allow markers live).  Line structure
// is preserved exactly in both.
// ---------------------------------------------------------------------------

struct Scanned {
    masked: Vec<String>,
    comments: Vec<String>,
}

fn scan_source(source: &str) -> Scanned {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let mut st = St::Code;
    let mut code = String::with_capacity(source.len());
    let mut com = String::with_capacity(source.len());
    // Push to the code view and blank the comment view (or vice versa).
    let emit = |code: &mut String, com: &mut String, c: char, to_code: bool| {
        if c == '\n' {
            code.push('\n');
            com.push('\n');
        } else if to_code {
            code.push(c);
            com.push(' ');
        } else {
            code.push(' ');
            com.push(c);
        }
    };
    let bytes = source.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let next = bytes.get(i + 1).map(|b| *b as char);
        match st {
            St::Code => match (c, next) {
                ('/', Some('/')) => {
                    st = St::LineComment;
                    emit(&mut code, &mut com, ' ', true);
                    emit(&mut code, &mut com, ' ', true);
                    i += 2;
                }
                ('/', Some('*')) => {
                    st = St::BlockComment(1);
                    emit(&mut code, &mut com, ' ', true);
                    emit(&mut code, &mut com, ' ', true);
                    i += 2;
                }
                ('r', Some('"')) | ('r', Some('#')) => {
                    // Possible raw string r"..." / r#"..."#.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            emit(&mut code, &mut com, ' ', true);
                        }
                        i = j + 1;
                    } else {
                        emit(&mut code, &mut com, c, true);
                        i += 1;
                    }
                }
                ('"', _) => {
                    st = St::Str;
                    emit(&mut code, &mut com, ' ', true);
                    i += 1;
                }
                ('\'', _) => {
                    // Lifetime (`'a`) vs char literal: a char literal closes
                    // with a `'` within a few bytes.
                    let mut j = i + 1;
                    if bytes.get(j) == Some(&b'\\') {
                        j += 2; // skip the escape and its target
                        while j < bytes.len() && bytes[j] != b'\'' {
                            j += 1; // \u{...}
                        }
                    } else if j < bytes.len() {
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'\'') {
                        st = St::Char;
                        emit(&mut code, &mut com, ' ', true);
                        i += 1;
                    } else {
                        emit(&mut code, &mut com, c, true); // lifetime tick
                        i += 1;
                    }
                }
                _ => {
                    emit(&mut code, &mut com, c, true);
                    i += 1;
                }
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                }
                emit(&mut code, &mut com, c, false);
                i += 1;
            }
            St::BlockComment(depth) => match (c, next) {
                ('*', Some('/')) => {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    emit(&mut code, &mut com, ' ', false);
                    emit(&mut code, &mut com, ' ', false);
                    i += 2;
                }
                ('/', Some('*')) => {
                    st = St::BlockComment(depth + 1);
                    emit(&mut code, &mut com, ' ', false);
                    emit(&mut code, &mut com, ' ', false);
                    i += 2;
                }
                _ => {
                    emit(&mut code, &mut com, c, false);
                    i += 1;
                }
            },
            St::Str => match (c, next) {
                ('\\', Some(n)) => {
                    // Keep line structure across `\<newline>` continuations.
                    emit(&mut code, &mut com, ' ', true);
                    emit(
                        &mut code,
                        &mut com,
                        if n == '\n' { '\n' } else { ' ' },
                        true,
                    );
                    i += 2;
                }
                ('"', _) => {
                    st = St::Code;
                    emit(&mut code, &mut com, ' ', true);
                    i += 1;
                }
                _ => {
                    emit(
                        &mut code,
                        &mut com,
                        if c == '\n' { '\n' } else { ' ' },
                        true,
                    );
                    i += 1;
                }
            },
            St::RawStr(hashes) => {
                if c == '"' {
                    let all = (0..hashes).all(|k| bytes.get(i + 1 + k) == Some(&b'#'));
                    if all {
                        st = St::Code;
                        for _ in 0..=hashes {
                            emit(&mut code, &mut com, ' ', true);
                        }
                        i += 1 + hashes;
                        continue;
                    }
                }
                emit(
                    &mut code,
                    &mut com,
                    if c == '\n' { '\n' } else { ' ' },
                    true,
                );
                i += 1;
            }
            St::Char => {
                if c == '\'' {
                    st = St::Code;
                }
                emit(&mut code, &mut com, ' ', true);
                i += 1;
            }
        }
    }
    Scanned {
        masked: code.lines().map(str::to_string).collect(),
        comments: com.lines().map(str::to_string).collect(),
    }
}

// ---------------------------------------------------------------------------
// Self-check: lint the bundled fixtures and assert every rule fires where
// expected (and nowhere in the clean fixture).  This is the synthetic
// violation gate CI runs alongside the workspace scan.
// ---------------------------------------------------------------------------

fn run_self_check(root: &Path) -> ExitCode {
    let fixtures = root.join("crates/lint/fixtures");
    let load = |name: &str| -> Option<String> {
        match std::fs::read_to_string(fixtures.join(name)) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("soap-lint: reading fixture {name}: {e}");
                None
            }
        }
    };
    let (Some(bad), Some(clean)) = (load("violations.rs"), load("clean.rs")) else {
        return ExitCode::from(2);
    };

    let mut env_reads = BTreeMap::new();
    let file = SourceFile::parse("crates/demo/src/violations.rs", &bad);
    let mut violations = file.lint(&mut env_reads);
    violations.extend(check_env_docs(
        &env_reads,
        "only SOAP_SELF_CHECK_DOCUMENTED here",
    ));
    let fired: BTreeSet<&str> = violations.iter().map(|v| v.rule).collect();
    let mut ok = true;
    for rule in RULES {
        if !fired.contains(rule) {
            eprintln!("self-check: rule '{rule}' did NOT fire on the violations fixture");
            ok = false;
        }
    }
    let undocumented = violations
        .iter()
        .any(|v| v.rule == "env-docs" && v.msg.contains("SOAP_SELF_CHECK_UNDOCUMENTED"));
    if !undocumented {
        eprintln!("self-check: env-docs missed SOAP_SELF_CHECK_UNDOCUMENTED");
        ok = false;
    }

    let mut env_reads = BTreeMap::new();
    let file = SourceFile::parse("crates/demo/src/clean.rs", &clean);
    let mut clean_violations = file.lint(&mut env_reads);
    clean_violations.extend(check_env_docs(
        &env_reads,
        "SOAP_SELF_CHECK_DOCUMENTED is the documented one",
    ));
    for v in &clean_violations {
        eprintln!("self-check: clean fixture flagged: {v}");
        ok = false;
    }

    if ok {
        println!(
            "soap-lint: self-check ok ({} violation(s) on the violations fixture, \
             0 on the clean fixture)",
            violations.len()
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(rel: &str, source: &str) -> Vec<Violation> {
        let mut env = BTreeMap::new();
        SourceFile::parse(rel, source).lint(&mut env)
    }

    #[test]
    fn masking_blanks_comments_and_strings() {
        let s = scan_source(
            "let a = \".unwrap()\"; // .expect(\nlet b = 1; /* Instant::now\n */ let c = 2;",
        );
        assert!(!s.masked[0].contains(".unwrap()"));
        assert!(!s.masked[0].contains(".expect("));
        assert!(!s.masked[1].contains("Instant::now"));
        assert!(s.masked[2].contains("let c = 2;"));
        assert_eq!(s.masked.len(), 3);
        // The comment view holds the comment text, line-aligned.
        assert!(s.comments[0].contains(".expect("));
        assert!(s.comments[1].contains("Instant::now"));
    }

    #[test]
    fn masking_handles_raw_strings_and_chars() {
        let s = scan_source("let s = r#\".partial_cmp(\"#; let c = '\"'; x.unwrap();");
        assert!(!s.masked[0].contains(".partial_cmp("));
        assert!(s.masked[0].contains(".unwrap()"), "{}", s.masked[0]);
    }

    #[test]
    fn masking_keeps_lines_aligned_across_string_continuations() {
        let src = "print(\n    \"line one\\n\\\n     line two\\n\"\n);\n";
        let s = scan_source(src);
        assert_eq!(s.masked.len(), src.lines().count());
    }

    #[test]
    fn marker_must_begin_the_comment() {
        // Prose that merely mentions the grammar is not a marker (and not a
        // bad-marker violation either).
        let v = lint_str(
            "crates/x/src/lib.rs",
            "// suppression uses lint:allow(rule): justification syntax\nfn f() {}",
        );
        assert!(
            v.is_empty(),
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
        // A marker inside a string literal is not a marker.
        let v = lint_str(
            "crates/x/src/lib.rs",
            "let s = \"lint:allow(unknown): text here\";",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn unwrap_rule_respects_scope_and_markers() {
        let v = lint_str("crates/x/src/lib.rs", "fn f() { y.unwrap(); }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unwrap-expect");
        // Marker on the line above suppresses it.
        let v = lint_str(
            "crates/x/src/lib.rs",
            "// lint:allow(unwrap-expect): held lock cannot poison here\nfn f() { y.unwrap(); }",
        );
        assert!(
            v.is_empty(),
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
        // Binaries and test files are out of scope.
        assert!(lint_str("crates/x/src/bin/tool.rs", "fn f() { y.unwrap(); }").is_empty());
        assert!(lint_str("crates/x/tests/t.rs", "fn f() { y.unwrap(); }").is_empty());
        // Test region of a library file is out of scope.
        let v = lint_str(
            "crates/x/src/lib.rs",
            "fn f() {}\n#[cfg(test)]\nmod tests { fn g() { y.unwrap(); } }",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn instant_now_allows_deadline_and_perf_files() {
        assert!(lint_str("crates/x/src/deadline.rs", "let t = Instant::now();").is_empty());
        assert!(lint_str("crates/x/src/perf.rs", "let t = Instant::now();").is_empty());
        let v = lint_str("crates/x/src/lib.rs", "let t = Instant::now();");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "instant-now");
    }

    #[test]
    fn partial_cmp_fires_and_file_marker_suppresses() {
        let v = lint_str("crates/x/src/lib.rs", "a.partial_cmp(&b)");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "partial-cmp");
        let v = lint_str(
            "crates/x/src/lib.rs",
            "// lint:allow-file(partial-cmp): this file defines the total order\na.partial_cmp(&b)",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn hashmap_iter_needs_serialization_context() {
        let src = "use std::collections::HashMap;\n\
                   let mut counts: HashMap<u32, u32> = HashMap::new;\n\
                   for (k, v) in counts.iter() { body(k, v); }\n";
        // No serialization in the file: not flagged.
        assert!(lint_str("crates/x/src/lib.rs", src).is_empty());
        // Same iteration in a file that serializes: flagged.
        let with_ser = format!("{src}serde_json::to_writer(w, &out);\n");
        let v = lint_str("crates/x/src/lib.rs", &with_ser);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "hashmap-iter");
        // Sorting on the iteration line canonicalizes it.
        let sorted = with_ser.replace("body(k, v)", "pairs.sort()");
        assert!(lint_str("crates/x/src/lib.rs", &sorted).is_empty());
    }

    #[test]
    fn env_tokens_are_maximal_and_skip_prefixes() {
        assert_eq!(
            soap_tokens("env::var(\"SOAP_THREADS\") + SOAP_SERVE_ + XSOAP_NOT"),
            vec!["SOAP_THREADS".to_string()]
        );
        let mut reads = BTreeMap::new();
        collect_env_mentions(
            "crates/x/src/lib.rs",
            0,
            "var(\"SOAP_NEW_KNOB\")",
            &mut reads,
        );
        let v = check_env_docs(&reads, "docs mention SOAP_OTHER only");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "env-docs");
        let v = check_env_docs(&reads, "docs mention SOAP_NEW_KNOB properly");
        assert!(v.is_empty());
    }

    #[test]
    fn bad_markers_are_violations() {
        let v = lint_str(
            "crates/x/src/lib.rs",
            "// lint:allow(no-such-rule): whatever this is\nfn f() {}",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "bad-marker");
        let v = lint_str(
            "crates/x/src/lib.rs",
            "// lint:allow(unwrap-expect)\nfn f() { y.unwrap(); }",
        );
        // Missing justification: the marker is invalid AND does not suppress.
        assert_eq!(
            v.len(),
            2,
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }
}
