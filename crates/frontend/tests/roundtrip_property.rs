//! Property test for the two frontend dialects: random small loop nests are
//! generated through `ProgramBuilder`, pretty-printed to both the
//! Python-like and the C-like dialect, and parsed back — `parse_python` and
//! `parse_c` must both reproduce the *same IR* the builder produced
//! (`Program` equality: domains, access components, update flags, statement
//! order).  The hand-written snippets in `tests/frontend_to_bound.rs` cover a
//! handful of shapes; this sweeps a few hundred.

use soap_frontend::{parse_c, parse_python};
use soap_ir::{Program, ProgramBuilder, Statement};

/// Deterministic xorshift64* generator — no external crates in this
/// workspace, and reproducible failures beat exotic randomness here.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    /// True with probability `percent`/100.
    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

const LOOP_VARS: [&str; 4] = ["i", "j", "k", "t"];
const PARAMS: [&str; 3] = ["N", "M", "P"];

/// One random affine subscript over the visible loop variables, rendered as
/// builder/parser syntax (`i`, `2*j`, `k + 1`, `t - 2`, `3`).
fn gen_subscript(rng: &mut Rng, vars: &[&str]) -> String {
    if rng.chance(8) {
        // Constant subscript.
        return format!("{}", rng.below(3));
    }
    let v = vars[rng.below(vars.len())];
    let coeff = if rng.chance(20) { 2 } else { 1 };
    let base = if coeff == 1 {
        v.to_string()
    } else {
        format!("{coeff}*{v}")
    };
    match rng.below(5) {
        0 => format!("{base} + {}", 1 + rng.below(2)),
        1 => format!("{base} - {}", 1 + rng.below(2)),
        _ => base,
    }
}

/// A comma-joined subscript tuple of the given arity.
fn gen_indices(rng: &mut Rng, vars: &[&str], arity: usize) -> String {
    (0..arity)
        .map(|_| gen_subscript(rng, vars))
        .collect::<Vec<_>>()
        .join(",")
}

/// Generate a random small program through the builder.
fn gen_program(rng: &mut Rng, case: usize) -> Program {
    let n_statements = 1 + rng.below(3);
    let mut b = ProgramBuilder::new(format!("prop{case}"));
    for s in 0..n_statements {
        let depth = 1 + rng.below(3);
        let vars: Vec<&str> = LOOP_VARS[..depth].to_vec();
        // Loop specs: occasionally a dependent lower bound on an inner loop.
        let loops: Vec<(String, String, String)> = vars
            .iter()
            .enumerate()
            .map(|(level, v)| {
                let lower = if level > 0 && rng.chance(25) {
                    format!("{} + 1", vars[level - 1])
                } else {
                    format!("{}", rng.below(2))
                };
                let param = PARAMS[rng.below(PARAMS.len())];
                let upper = if rng.chance(25) {
                    format!("{param} - 1")
                } else {
                    param.to_string()
                };
                (v.to_string(), lower, upper)
            })
            .collect();
        // Output: a unique array, subscripted by a non-empty prefix of the
        // loop variables (so update statements get reduction dimensions).
        let out_arity = 1 + rng.below(depth);
        let out_ix = vars[..out_arity].join(",");
        let is_update = rng.chance(50);
        // Reads: 1–3 unique arrays; one may get extra stencil-style
        // components (same linear part, shifted offsets).
        let n_reads = 1 + rng.below(3);
        let reads: Vec<(String, Vec<String>)> = (0..n_reads)
            .map(|r| {
                let arity = 1 + rng.below(2);
                let mut comps = vec![gen_indices(rng, &vars, arity)];
                if r == 0 && rng.chance(30) {
                    // Offset copies of a plain subscript tuple (the Example-1
                    // stencil shape); keep them distinct.
                    let base: Vec<&str> = vars[..arity.min(vars.len())].to_vec();
                    comps = vec![
                        base.join(","),
                        base.iter()
                            .map(|v| format!("{v} + 1"))
                            .collect::<Vec<_>>()
                            .join(","),
                    ];
                    if rng.chance(50) {
                        comps.push(
                            base.iter()
                                .map(|v| format!("{v} - 1"))
                                .collect::<Vec<_>>()
                                .join(","),
                        );
                    }
                }
                (format!("In{s}_{r}"), comps)
            })
            .collect();
        b = b.statement(move |mut st| {
            let specs: Vec<(&str, &str, &str)> = loops
                .iter()
                .map(|(v, lo, hi)| (v.as_str(), lo.as_str(), hi.as_str()))
                .collect();
            st = st.loops(&specs);
            st = if is_update {
                st.update(&format!("Out{s}"), &out_ix)
            } else {
                st.write(&format!("Out{s}"), &out_ix)
            };
            for (array, comps) in &reads {
                st = if comps.len() == 1 {
                    st.read(array, &comps[0])
                } else {
                    let refs: Vec<&str> = comps.iter().map(String::as_str).collect();
                    st.read_multi(array, &refs)
                };
            }
            st
        });
    }
    b.build().expect("generated program builds")
}

/// Render one statement's assignment line: every component of every input
/// access becomes a separate array reference (the parsers re-group them).
fn assignment_line(st: &Statement, c_style: bool) -> String {
    let subscript = |indices: &[soap_ir::LinIndex]| -> String {
        if c_style {
            indices
                .iter()
                .map(|ix| format!("[{ix}]"))
                .collect::<String>()
        } else {
            format!(
                "[{}]",
                indices
                    .iter()
                    .map(|ix| format!("{ix}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        }
    };
    let lhs = format!(
        "{}{}",
        st.output.array,
        subscript(&st.output.components[0].indices)
    );
    let op = if st.is_update { "+=" } else { "=" };
    let rhs: Vec<String> = st
        .inputs
        .iter()
        .flat_map(|acc| {
            acc.components
                .iter()
                .map(move |c| format!("{}{}", acc.array, subscript(&c.indices)))
        })
        .collect();
    format!("{lhs} {op} {}", rhs.join(" + "))
}

/// Pretty-print to the Python-like dialect.
fn to_python(p: &Program) -> String {
    let mut out = String::new();
    for st in &p.statements {
        for (level, lv) in st.domain.loops.iter().enumerate() {
            out.push_str(&"    ".repeat(level));
            out.push_str(&format!(
                "for {} in range({}, {}):\n",
                lv.name, lv.lower, lv.upper
            ));
        }
        out.push_str(&"    ".repeat(st.domain.loops.len()));
        out.push_str(&assignment_line(st, false));
        out.push('\n');
    }
    out
}

/// Pretty-print to the C-like dialect.
fn to_c(p: &Program) -> String {
    let mut out = String::new();
    for st in &p.statements {
        for (level, lv) in st.domain.loops.iter().enumerate() {
            out.push_str(&"  ".repeat(level));
            out.push_str(&format!(
                "for ({v} = {lo}; {v} < {hi}; {v}++) {{\n",
                v = lv.name,
                lo = lv.lower,
                hi = lv.upper
            ));
        }
        out.push_str(&"  ".repeat(st.domain.loops.len()));
        out.push_str(&assignment_line(st, true));
        out.push_str(";\n");
        for level in (0..st.domain.loops.len()).rev() {
            out.push_str(&"  ".repeat(level));
            out.push_str("}\n");
        }
    }
    out
}

#[test]
fn random_programs_round_trip_through_both_dialects() {
    let mut rng = Rng(0x5eed_50a9_2026_0730);
    for case in 0..300 {
        let built = gen_program(&mut rng, case);
        let py_src = to_python(&built);
        let c_src = to_c(&built);
        let from_py = parse_python(&built.name, &py_src)
            .unwrap_or_else(|e| panic!("case {case}: python parse failed: {e}\nsource:\n{py_src}"));
        assert_eq!(
            built, from_py,
            "case {case}: python round-trip diverged\nsource:\n{py_src}"
        );
        let from_c = parse_c(&built.name, &c_src)
            .unwrap_or_else(|e| panic!("case {case}: C parse failed: {e}\nsource:\n{c_src}"));
        assert_eq!(
            built, from_c,
            "case {case}: C round-trip diverged\nsource:\n{c_src}"
        );
    }
}
