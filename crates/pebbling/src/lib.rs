//! # soap-pebbling
//!
//! The explicit-CDAG substrate: red-blue pebble games played on concrete
//! (small) instances of SOAP programs.  The paper's bounds are analytic; this
//! crate provides the machinery to *validate* them empirically:
//!
//! * [`cdag`] — build the Computational DAG of a program for concrete
//!   parameter values (every statement execution becomes a vertex, every
//!   array-element version is tracked).
//! * [`game`] — the red-blue pebble game of Hong & Kung: move validation
//!   under a red-pebble budget `S` and I/O accounting.
//! * [`schedule`] — schedule generators (program order and tiled) with
//!   Belady-style eviction and write-back, producing valid pebbling move
//!   sequences whose I/O can be compared against the analytic lower bounds.
//! * [`dominator`] — exact minimum dominator-set computation via a Dinic
//!   max-flow vertex cut, used to validate Lemma 3 on concrete
//!   subcomputations.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdag;
pub mod dominator;
pub mod game;
pub mod schedule;

pub use cdag::{Cdag, VertexId, VertexKind};
pub use dominator::min_dominator_size;
pub use game::{Move, PebbleGame, PebblingError};
pub use schedule::{simulate_program_order, simulate_tiled, ScheduleStats};
