//! Program-level analysis: Theorem 1.

use crate::graph::Sdg;
use crate::merge::merged_model;
use crate::subgraphs::enumerate_connected_subgraphs;
use rayon::prelude::*;
use soap_core::{solve_model, AnalysisError, AnalysisOptions, IntensityResult};
use soap_ir::Program;
use soap_symbolic::{Expr, Polynomial, Rational};
use std::collections::BTreeMap;

/// Options for the SDG analysis.
#[derive(Clone, Debug)]
pub struct SdgOptions {
    /// Section 5.3: treat linear-combination subscripts as injective.
    pub assume_injective: bool,
    /// Maximum number of arrays per enumerated subgraph.
    pub max_subgraph_size: usize,
    /// Hard cap on the number of enumerated subgraphs.
    pub max_subgraphs: usize,
    /// Reference fast-memory size used to order intensities numerically.
    pub reference_s: f64,
}

impl Default for SdgOptions {
    fn default() -> Self {
        SdgOptions {
            assume_injective: false,
            max_subgraph_size: 4,
            max_subgraphs: 4096,
            reference_s: 1.0e6,
        }
    }
}

/// The intensity of one evaluated SDG subgraph.
#[derive(Clone, Debug)]
pub struct SubgraphIntensity {
    /// The arrays of the subgraph `H`.
    pub arrays: Vec<String>,
    /// The solved intensity of the subgraph statement `St_H`.
    pub intensity: IntensityResult,
}

/// The per-array term of Theorem 1.
#[derive(Clone, Debug)]
pub struct ArrayBound {
    /// The computed array.
    pub array: String,
    /// `|A|`: the exact number of CDAG vertices written into the array.
    pub vertex_count: Polynomial,
    /// The maximal intensity over subgraphs containing the array.
    pub rho: Expr,
    /// The exponent σ of that intensity's power law.
    pub sigma: Rational,
    /// The subgraph attaining the maximum.
    pub best_subgraph: Vec<String>,
    /// The array's contribution `|A| / ρ` (leading order).
    pub bound: Expr,
}

/// The result of analyzing a whole program.
#[derive(Clone, Debug)]
pub struct ProgramAnalysis {
    /// Program name.
    pub name: String,
    /// Per-array Theorem-1 terms.
    pub per_array: Vec<ArrayBound>,
    /// All evaluated subgraphs and their intensities.
    pub subgraphs: Vec<SubgraphIntensity>,
    /// The total leading-order I/O lower bound `Q`.
    pub bound: Expr,
    /// Diagnostic notes (skipped arrays, enumeration truncation, …).
    pub notes: Vec<String>,
}

impl ProgramAnalysis {
    /// Evaluate the bound numerically.
    pub fn bound_at(&self, bindings: &BTreeMap<String, f64>) -> Option<f64> {
        self.bound.eval(bindings)
    }

    /// The dominant (highest-degree) term of the bound, as a display string.
    pub fn bound_string(&self) -> String {
        format!("{}", self.bound)
    }
}

/// Analyze a program with default options.
pub fn analyze_program(program: &Program) -> Result<ProgramAnalysis, AnalysisError> {
    analyze_program_with(program, &SdgOptions::default())
}

/// Analyze a program: enumerate SDG subgraphs, solve each subgraph statement's
/// intensity in parallel, and combine them with Theorem 1.
pub fn analyze_program_with(
    program: &Program,
    opts: &SdgOptions,
) -> Result<ProgramAnalysis, AnalysisError> {
    program
        .validate()
        .map_err(|e| AnalysisError::InvalidStatement(e.to_string()))?;
    let mut notes = Vec::new();
    let sdg = Sdg::from_program(program);
    let enumeration =
        enumerate_connected_subgraphs(&sdg, opts.max_subgraph_size, opts.max_subgraphs);
    if enumeration.truncated {
        notes.push(format!(
            "subgraph enumeration truncated at {} subgraphs (max size {}); the bound may be looser than the full Theorem-1 maximum",
            opts.max_subgraphs, opts.max_subgraph_size
        ));
    }
    let subgraph_sets = enumeration.subgraphs;
    let core_opts = AnalysisOptions {
        assume_injective: opts.assume_injective,
    };

    // Solve all subgraph statements in parallel.
    let subgraphs: Vec<SubgraphIntensity> = subgraph_sets
        .par_iter()
        .filter_map(|arrays| {
            let model = merged_model(program, arrays, &core_opts).ok()?;
            let intensity = solve_model(&model).ok()?;
            Some(SubgraphIntensity {
                arrays: arrays.clone(),
                intensity,
            })
        })
        .collect();

    // Theorem 1: per computed array, the maximal intensity over subgraphs
    // containing it.
    let params = program.parameters();
    let mut per_array = Vec::new();
    let mut total = Expr::zero();
    for array in program.computed_arrays() {
        let candidates: Vec<&SubgraphIntensity> = subgraphs
            .iter()
            .filter(|s| s.arrays.contains(&array))
            .collect();
        if candidates.is_empty() {
            notes.push(format!(
                "array {array}: no analyzable subgraph (e.g. an initialization statement without inputs); its compulsory traffic is not included in the bound"
            ));
            continue;
        }
        let best = candidates
            .iter()
            .max_by(|a, b| {
                let ra = a.intensity.rho_at(opts.reference_s);
                let rb = b.intensity.rho_at(opts.reference_s);
                ra.partial_cmp(&rb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty candidates");
        let vertex_count = program.vertex_count_of(&array);
        let leading = vertex_count.leading_terms(&params).to_expr();
        let bound = leading.div(best.intensity.rho.clone());
        total = total.add(bound.clone());
        per_array.push(ArrayBound {
            array,
            vertex_count,
            rho: best.intensity.rho.clone(),
            sigma: best.intensity.sigma,
            best_subgraph: best.arrays.clone(),
            bound,
        });
    }

    Ok(ProgramAnalysis {
        name: program.name.clone(),
        per_array,
        subgraphs,
        bound: total,
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use soap_ir::ProgramBuilder;

    fn eval(e: &Expr, pairs: &[(&str, f64)]) -> f64 {
        let b: BTreeMap<String, f64> = pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        e.eval(&b).unwrap()
    }

    fn gemm() -> Program {
        ProgramBuilder::new("gemm")
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "N"), ("k", "0", "N")])
                    .update("C", "i,j")
                    .read("A", "i,k")
                    .read("B", "k,j")
            })
            .build()
            .unwrap()
    }

    fn two_mm() -> Program {
        ProgramBuilder::new("2mm")
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "N"), ("k", "0", "N")])
                    .update("tmp", "i,j")
                    .read("A", "i,k")
                    .read("B", "k,j")
            })
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("l", "0", "N"), ("j", "0", "N")])
                    .update("D", "i,l")
                    .read("tmp", "i,j")
                    .read("C", "j,l")
            })
            .build()
            .unwrap()
    }

    #[test]
    fn gemm_program_bound_matches_single_statement() {
        let res = analyze_program(&gemm()).unwrap();
        assert_eq!(res.per_array.len(), 1);
        let q = eval(&res.bound, &[("N", 1000.0), ("S", 10_000.0)]);
        assert!((q - 2.0e7).abs() / 2.0e7 < 0.05, "bound {q}");
    }

    #[test]
    fn two_mm_bound_is_four_n_cubed_over_sqrt_s() {
        let res = analyze_program(&two_mm()).unwrap();
        assert_eq!(res.per_array.len(), 2);
        let q = eval(&res.bound, &[("N", 1000.0), ("S", 10_000.0)]);
        let expected = 4.0e9 / 100.0;
        assert!(
            (q - expected).abs() / expected < 0.1,
            "bound {q} vs {expected}"
        );
        // Both arrays should be bounded by the isolated matmul intensity.
        for ab in &res.per_array {
            assert_eq!(ab.sigma, Rational::new(3, 2), "array {}", ab.array);
        }
    }

    #[test]
    fn mvt_counts_the_matrix_once() {
        let p = ProgramBuilder::new("mvt")
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "N")])
                    .update("x1", "i")
                    .read("A", "i,j")
                    .read("y1", "j")
            })
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "N")])
                    .update("x2", "i")
                    .read("A", "j,i")
                    .read("y2", "j")
            })
            .build()
            .unwrap();
        let res = analyze_program(&p).unwrap();
        // Q ≈ N² (the matrix is read once; the two MVs share it).
        let q = eval(&res.bound, &[("N", 1000.0), ("S", 10_000.0)]);
        assert!((q - 1.0e6).abs() / 1.0e6 < 0.1, "bound {q}");
    }

    #[test]
    fn notes_report_uncovered_arrays() {
        // An initialization statement writing zeros has no inputs at all; its
        // array cannot be bounded and must be reported in the notes.
        let p = ProgramBuilder::new("init_only")
            .statement(|st| st.loops(&[("i", "0", "N")]).write("Z", "0"))
            .build();
        // "Z[0]" uses a constant subscript; the loop variable i never appears,
        // which is fine for the IR but yields no analyzable dominator.
        let p = p.unwrap();
        let res = analyze_program(&p).unwrap();
        assert!(res.per_array.is_empty());
        assert!(!res.notes.is_empty());
    }
}
