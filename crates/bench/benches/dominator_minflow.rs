//! Lemma-3 exactness check: the analytic access-set count of a rectangular
//! MMM tile equals the exact minimum external dominator computed by max-flow,
//! and the max-flow itself is the benchmarked operation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soap_pebbling::{min_dominator_size, Cdag, VertexKind};
use std::collections::BTreeMap;

fn mmm_cdag(n: i64) -> Cdag {
    let entry = soap_kernels::by_name("gemm").unwrap();
    let params: BTreeMap<String, i64> = entry
        .program
        .parameters()
        .into_iter()
        .map(|p| (p, n))
        .collect();
    Cdag::from_program(&entry.program, &params)
}

fn tile(cdag: &Cdag, extent: i64) -> Vec<usize> {
    cdag.compute_vertices()
        .into_iter()
        .filter(|&v| match &cdag.kinds[v] {
            VertexKind::Compute { iteration, .. } => iteration.iter().all(|&x| x < extent),
            _ => false,
        })
        .collect()
}

fn bench_dominator(c: &mut Criterion) {
    // Exactness check once, outside the timed region.
    let g = mmm_cdag(6);
    for t in [2i64, 3] {
        let h = tile(&g, t);
        let dom = min_dominator_size(&g, &h);
        let lemma3 = (3 * t * t) as usize;
        assert_eq!(dom, lemma3, "tile extent {t}");
        println!("MMM tile {t}³: exact Dom_min = {dom}, Lemma 3 = {lemma3}");
    }

    let mut group = c.benchmark_group("dominator_minflow");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [4i64, 6, 8] {
        let g = mmm_cdag(n);
        let h = tile(&g, n / 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(g, h), |b, (g, h)| {
            b.iter(|| min_dominator_size(g, h))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dominator);
criterion_main!(benches);
