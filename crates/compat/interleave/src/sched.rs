//! The controlled scheduler: one model thread runs at a time, every shim
//! operation yields back here, and which thread continues is a recorded,
//! replayable *decision*.

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Panic payload used to unwind parked model threads when a run is torn down
/// (failure found, or the scheduler finished).  Model code must not
/// `catch_unwind`, or it would swallow this.
pub(crate) struct Aborted;

/// Scheduling state of one model thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Status {
    /// Eligible to be scheduled.
    Runnable,
    /// Parked until the given lock is released.
    BlockedLock(usize),
    /// Parked on the given condvar until notified.
    BlockedCv(usize),
    /// Parked until the given thread finishes.
    BlockedJoin(usize),
    /// Done (normally or by panic).
    Finished,
}

/// How choices beyond the forced prefix are made.
pub(crate) enum Policy {
    /// Always take choice 0 (the DFS leftmost descent).
    Leftmost,
    /// Seeded xorshift64* choices (the post-DFS random fallback).
    Random(XorShift),
}

/// The mutable scheduler state, guarded by the controller mutex.
pub(crate) struct Ctrl {
    pub threads: Vec<Status>,
    /// Lock id → current holder.
    pub locks: Vec<Option<usize>>,
    /// Condvar id → parked threads, in wait order.
    pub cvs: Vec<Vec<usize>>,
    /// The thread currently allowed to run (`None` = scheduler's turn).
    pub active: Option<usize>,
    /// Choices made so far this run.
    pub decisions: Vec<u8>,
    /// Number of options each decision chose among (for DFS backtracking).
    pub options: Vec<u8>,
    /// Choices forced by replay / DFS prefix; beyond it the policy decides.
    pub forced: Vec<u8>,
    pub policy: Policy,
    /// First failure observed (panic message, deadlock, step budget).
    pub failure: Option<String>,
    /// Tear-down flag: parked threads unwind with [`Aborted`].
    pub abort: bool,
}

impl Ctrl {
    fn new(forced: Vec<u8>, policy: Policy) -> Ctrl {
        Ctrl {
            threads: Vec::new(),
            locks: Vec::new(),
            cvs: Vec::new(),
            active: None,
            decisions: Vec::new(),
            options: Vec::new(),
            forced,
            policy,
            failure: None,
            abort: false,
        }
    }

    /// Make (and record) the next decision among `options` alternatives.
    pub fn decide(&mut self, options: usize) -> usize {
        debug_assert!(options >= 1);
        assert!(
            options < 256,
            "decision fan-out {options} exceeds u8 encoding"
        );
        let i = self.decisions.len();
        let choice = if i < self.forced.len() {
            (self.forced[i] as usize).min(options - 1)
        } else {
            match &mut self.policy {
                Policy::Leftmost => 0,
                Policy::Random(rng) => (rng.next() % options as u64) as usize,
            }
        };
        self.decisions.push(choice as u8);
        self.options.push(options as u8);
        choice
    }
}

/// One model run's shared coordination point: the scheduler thread and every
/// model thread rendezvous through `st`/`cv`.
pub(crate) struct Controller {
    pub st: Mutex<Ctrl>,
    pub cv: Condvar,
    /// OS handles of spawned model threads, joined at run teardown.
    pub os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    /// The controller + thread id of the model thread running on this OS
    /// thread, set by the per-run wrappers in `model.rs` / `thread.rs`.
    static CTX: RefCell<Option<(Arc<Controller>, usize)>> = const { RefCell::new(None) };
}

/// Run `f` with the current model context; panics if called outside a model.
pub(crate) fn with_ctx<R>(f: impl FnOnce(&Arc<Controller>, usize) -> R) -> R {
    CTX.with(|c| {
        let borrowed = c.borrow();
        let (ctrl, tid) = borrowed
            .as_ref()
            // lint:allow(unwrap-expect): using a shim primitive outside Model::check is API misuse; panicking is the documented contract
            .expect("interleave primitive used outside Model::check");
        f(ctrl, *tid)
    })
}

pub(crate) fn set_ctx(ctrl: Arc<Controller>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((ctrl, tid)));
}

pub(crate) fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

impl Controller {
    pub fn new(forced: Vec<u8>, policy: Policy) -> Controller {
        Controller {
            st: Mutex::new(Ctrl::new(forced, policy)),
            cv: Condvar::new(),
            os_handles: Mutex::new(Vec::new()),
        }
    }

    /// The coordination mutex can only be "poisoned" by a panic while held,
    /// which our own code never does; recover rather than cascade.
    pub fn lock_st(&self) -> MutexGuard<'_, Ctrl> {
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Park until the scheduler hands this thread the baton (or tears the
    /// run down, in which case unwind with [`Aborted`]).
    pub fn wait_for_turn<'a>(
        &'a self,
        mut st: MutexGuard<'a, Ctrl>,
        me: usize,
    ) -> MutexGuard<'a, Ctrl> {
        loop {
            if st.abort {
                // A thread that is already unwinding (guard drops during a
                // panic) must not panic again — that would be a process
                // abort.  Let it proceed unscheduled; the run is over.
                if std::thread::panicking() {
                    return st;
                }
                drop(st);
                std::panic::panic_any(Aborted);
            }
            if st.active == Some(me) {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A plain schedule point: hand the baton back and wait to be re-picked.
    pub fn step(&self, me: usize) {
        let mut st = self.lock_st();
        st.active = None;
        self.cv.notify_all();
        let st = self.wait_for_turn(st, me);
        drop(st);
    }

    pub fn register_lock(&self) -> usize {
        let mut st = self.lock_st();
        st.locks.push(None);
        st.locks.len() - 1
    }

    pub fn register_cv(&self) -> usize {
        let mut st = self.lock_st();
        st.cvs.push(Vec::new());
        st.cvs.len() - 1
    }

    pub fn register_thread(&self) -> usize {
        let mut st = self.lock_st();
        st.threads.push(Status::Runnable);
        assert!(st.threads.len() <= 16, "model spawned more than 16 threads");
        st.threads.len() - 1
    }

    /// Acquire `lock` for `me`, parking while another thread holds it.
    pub fn lock_acquire(&self, me: usize, lock: usize) {
        // Schedule point before the attempt: other threads may race us here.
        self.step(me);
        loop {
            let mut st = self.lock_st();
            if st.abort {
                if std::thread::panicking() {
                    // Unwinding during teardown: skip the model acquire
                    // entirely (release is abort-tolerant too).
                    return;
                }
                drop(st);
                std::panic::panic_any(Aborted);
            }
            if st.locks[lock].is_none() {
                st.locks[lock] = Some(me);
                return;
            }
            st.threads[me] = Status::BlockedLock(lock);
            st.active = None;
            self.cv.notify_all();
            let st = self.wait_for_turn(st, me);
            drop(st);
            // Woken after a release — retry; another thread may have won.
        }
    }

    /// Release `lock`, waking its waiters, then yield.
    pub fn lock_release(&self, me: usize, lock: usize) {
        {
            let mut st = self.lock_st();
            if st.abort {
                // Teardown: clear the hold if it is ours and get out without
                // re-parking (the thread may be mid-unwind).
                if st.locks[lock] == Some(me) {
                    st.locks[lock] = None;
                }
                drop(st);
                if std::thread::panicking() {
                    return;
                }
                std::panic::panic_any(Aborted);
            }
            debug_assert_eq!(st.locks[lock], Some(me), "unlock by non-holder");
            st.locks[lock] = None;
            for t in 0..st.threads.len() {
                if st.threads[t] == Status::BlockedLock(lock) {
                    st.threads[t] = Status::Runnable;
                }
            }
        }
        self.step(me);
    }

    /// Atomically release `lock` and park on `cv` (the condvar-wait half;
    /// the caller reacquires the lock afterwards, competing like real code).
    pub fn cv_wait(&self, me: usize, cv: usize, lock: usize) {
        let mut st = self.lock_st();
        debug_assert_eq!(st.locks[lock], Some(me), "cv wait without the lock");
        st.locks[lock] = None;
        for t in 0..st.threads.len() {
            if st.threads[t] == Status::BlockedLock(lock) {
                st.threads[t] = Status::Runnable;
            }
        }
        st.cvs[cv].push(me);
        st.threads[me] = Status::BlockedCv(cv);
        st.active = None;
        self.cv.notify_all();
        let st = self.wait_for_turn(st, me);
        drop(st);
    }

    /// Wake one waiter of `cv`.  *Which* waiter is a scheduler decision, so
    /// every possible wake order is explored.
    pub fn cv_notify_one(&self, me: usize, cv: usize) {
        {
            let mut st = self.lock_st();
            let n = st.cvs[cv].len();
            if n > 0 {
                let i = if n == 1 { 0 } else { st.decide(n) };
                let woken = st.cvs[cv].remove(i);
                st.threads[woken] = Status::Runnable;
            }
        }
        self.step(me);
    }

    /// Wake every waiter of `cv`.
    pub fn cv_notify_all(&self, me: usize, cv: usize) {
        {
            let mut st = self.lock_st();
            let waiters = std::mem::take(&mut st.cvs[cv]);
            for woken in waiters {
                st.threads[woken] = Status::Runnable;
            }
        }
        self.step(me);
    }

    /// Park until `target` finishes.
    pub fn join_wait(&self, me: usize, target: usize) {
        self.step(me);
        loop {
            let mut st = self.lock_st();
            if st.abort {
                if std::thread::panicking() {
                    return;
                }
                drop(st);
                std::panic::panic_any(Aborted);
            }
            if st.threads[target] == Status::Finished {
                return;
            }
            st.threads[me] = Status::BlockedJoin(target);
            st.active = None;
            self.cv.notify_all();
            let st = self.wait_for_turn(st, me);
            drop(st);
        }
    }

    /// Mark `me` finished (recording a panic as the run's failure), wake
    /// joiners, and hand the baton back for good.
    pub fn thread_finished(&self, me: usize, panic_msg: Option<String>) {
        let mut st = self.lock_st();
        st.threads[me] = Status::Finished;
        for t in 0..st.threads.len() {
            if st.threads[t] == Status::BlockedJoin(me) {
                st.threads[t] = Status::Runnable;
            }
        }
        if let Some(msg) = panic_msg {
            if st.failure.is_none() {
                st.failure = Some(msg);
            }
            st.abort = true;
        }
        st.active = None;
        self.cv.notify_all();
    }
}

/// xorshift64* — the same tiny deterministic generator the rest of the
/// workspace uses for seeded test inputs.
pub(crate) struct XorShift(pub u64);

impl XorShift {
    pub fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Extract a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
