//! # soap-ir
//!
//! The intermediate representation of **Simple Overlap Access Programs**
//! (SOAP, Section 3 of the paper): loop nests of statements whose array
//! accesses are affine functions of the iteration variables.
//!
//! The IR is deliberately front-end agnostic — it is produced either by the
//! `soap-frontend` parsers (from Python-like or C-like source) or
//! programmatically by the kernel library, and consumed by the
//! single-statement analysis (`soap-core`), the multi-statement SDG analysis
//! (`soap-sdg`) and the CDAG/pebbling substrate (`soap-pebbling`).
//!
//! The main types are:
//!
//! * [`LinIndex`] — one affine array-subscript expression (`i`, `i-1`, `r + 2*w`).
//! * [`AccessComponent`] / [`ArrayAccess`] — an access-function-vector
//!   component `φ_{j,k}` and the full access function vector `φ_j`.
//! * [`AffineExpr`], [`LoopVar`], [`IterationDomain`] — loop bounds and nests.
//! * [`Statement`] — one SOAP statement `A₀[φ₀(ψ)] ← f(A₁[φ₁(ψ)], …)`.
//! * [`Program`] — a sequence of statements plus its symbolic size parameters.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod builder;
pub mod domain;
pub mod parse;
pub mod program;
pub mod statement;

pub use access::{AccessComponent, ArrayAccess, LinIndex};
pub use builder::{ProgramBuilder, StatementBuilder};
pub use domain::{AffineExpr, IterationDomain, LoopVar};
pub use program::{Array, Program};
pub use statement::Statement;

/// Errors produced while constructing or validating IR objects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IrError {
    /// An index expression references a variable that is not a loop variable
    /// of the enclosing statement.
    UnknownVariable {
        /// The statement name.
        statement: String,
        /// The offending variable.
        variable: String,
    },
    /// Two components of the same access function vector have different arity.
    InconsistentArity {
        /// The array whose access components disagree.
        array: String,
    },
    /// A loop variable name is duplicated within one statement.
    DuplicateLoopVariable {
        /// The statement name.
        statement: String,
        /// The duplicated variable.
        variable: String,
    },
    /// A statement has no loops (scalar statements carry no asymptotic I/O).
    EmptyLoopNest {
        /// The statement name.
        statement: String,
    },
    /// Failed to parse an affine expression.
    Parse(String),
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrError::UnknownVariable {
                statement,
                variable,
            } => {
                write!(f, "statement {statement}: unknown variable {variable}")
            }
            IrError::InconsistentArity { array } => {
                write!(
                    f,
                    "array {array}: access components have inconsistent arity"
                )
            }
            IrError::DuplicateLoopVariable {
                statement,
                variable,
            } => {
                write!(
                    f,
                    "statement {statement}: duplicate loop variable {variable}"
                )
            }
            IrError::EmptyLoopNest { statement } => {
                write!(f, "statement {statement}: empty loop nest")
            }
            IrError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for IrError {}
