//! An executable Loomis–Whitney / HBL-style projection baseline.
//!
//! Prior automated approaches (Christ et al., IOLB's "geometric" bounds) lower
//! bound the I/O of a loop nest through the sizes of the projections of the
//! iteration space onto the arrays' index subspaces, solving a small LP over
//! the projection exponents.  This module implements that reasoning directly
//! on the SOAP IR: per statement the exponent LP over the *input* access index
//! sets gives `σ_LW`, the intensity is bounded by `S^{σ_LW − 1}` with the unit
//! constant (projection reasoning loses the constant factors that the SOAP
//! combinatorial counting retains), and statements are summed — no
//! inter-statement reuse, no recomputation, exactly the modelling restrictions
//! the paper lists for prior work.

use soap_ir::{Program, Statement};
use soap_symbolic::{lp, Expr, Rational};

/// The projection exponent `σ_LW` of a single statement.
pub fn projection_exponent(st: &Statement) -> Rational {
    let vars = st.loop_variables();
    let var_index = |name: &str| vars.iter().position(|v| v == name);
    let mut sets: Vec<Vec<usize>> = Vec::new();
    // Projection bounds consider every array the statement touches, including
    // the output projection (Loomis–Whitney for MMM uses all three faces).
    for acc in std::iter::once(&st.output).chain(st.inputs.iter()) {
        let set: Vec<usize> = acc
            .variables()
            .iter()
            .filter_map(|v| var_index(v))
            .collect();
        if !set.is_empty() {
            sets.push(set);
        }
    }
    if sets.is_empty() {
        return Rational::ONE;
    }
    lp::access_exponent_lp(vars.len(), &sets).value
}

/// The Loomis–Whitney-style lower bound of a whole program: the sum of the
/// per-statement projection bounds `|D| / S^{σ−1}`.
pub fn loomis_whitney_bound(program: &Program) -> Expr {
    let params = program.parameters();
    let mut total = Expr::zero();
    for st in &program.statements {
        let sigma = projection_exponent(st);
        let work = st.execution_count().leading_terms(&params).to_expr();
        let rho = if sigma <= Rational::ONE {
            Expr::one()
        } else {
            Expr::sym("S").pow(sigma - Rational::ONE)
        };
        total = total.add(work.div(rho));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn eval(e: &Expr, pairs: &[(&str, f64)]) -> f64 {
        let b: BTreeMap<String, f64> = pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        e.eval(&b).unwrap()
    }

    #[test]
    fn gemm_projection_bound_is_cubic_over_sqrt_s() {
        let p = soap_kernels::polybench::gemm();
        let sigma = projection_exponent(&p.statements[0]);
        assert_eq!(sigma, Rational::new(3, 2));
        let bound = loomis_whitney_bound(&p);
        let v = eval(
            &bound,
            &[("NI", 100.0), ("NJ", 100.0), ("NK", 100.0), ("S", 100.0)],
        );
        // N³/√S without the factor-2 constant of the SOAP bound.
        assert_eq!(v, 1.0e6 / 10.0);
    }

    #[test]
    fn stencil_projection_bound_misses_the_time_tiling() {
        // For jacobi-1d the projection baseline sees σ = 1 (every access spans
        // both loops), so its bound has no 1/S factor at all — this is the gap
        // the SOAP surface counting closes.
        let p = soap_kernels::polybench::jacobi1d();
        let sigma = projection_exponent(&p.statements[0]);
        assert_eq!(sigma, Rational::ONE);
    }

    #[test]
    fn multi_statement_bounds_add_up() {
        let p = soap_kernels::polybench::two_mm();
        let bound = loomis_whitney_bound(&p);
        let v = eval(
            &bound,
            &[
                ("NI", 10.0),
                ("NJ", 10.0),
                ("NK", 10.0),
                ("NL", 10.0),
                ("S", 25.0),
            ],
        );
        assert_eq!(v, 2.0 * 1000.0 / 5.0);
    }
}
