//! Offline stand-in for `rayon`: the `par_iter().map(..)/.filter_map(..)
//! .collect()` shape used by this workspace, executed on `std::thread::scope`
//! threads.
//!
//! ## Scheduling
//!
//! Work is *self-scheduled*: every worker (the calling thread plus up to
//! `worker_budget() - 1` spawned threads) repeatedly claims the next unclaimed
//! block of items from a shared atomic index and processes it.  Unlike the
//! one-contiguous-chunk-per-core static split this replaces, a skewed workload
//! (one item a thousand times heavier than the rest — e.g. the attention
//! statements of a transformer among its element-wise epilogues) keeps every
//! other worker busy on the remaining items instead of serializing a whole
//! chunk behind the heavy one.  Results are written back by item index, so
//! collection order matches the sequential iteration order exactly regardless
//! of which worker processed what (the same guarantee real rayon gives for
//! indexed parallel iterators).
//!
//! ## Worker budget (nested parallelism)
//!
//! All parallel iterators share one process-wide *worker budget*
//! ([`worker_budget`]): the maximum number of threads doing parallel work at
//! any moment.  A `par_iter` reserves its extra workers from the shared pool
//! and returns them when done, so nested parallelism (a suite-level
//! `par_iter` over programs whose per-program analyses `par_iter` over
//! subgraphs) degrades gracefully instead of oversubscribing: once the outer
//! loop holds the whole budget, inner loops find the pool empty and run
//! inline on their caller.  The budget defaults to the `SOAP_THREADS`
//! environment variable (validated by [`parse_worker_threads`]) or, when
//! unset, to [`std::thread::available_parallelism`]; [`set_worker_budget`]
//! overrides it at runtime (CLI `--threads`, thread-scaling benches).
//!
//! ## Panic isolation
//!
//! Each item runs under [`std::panic::catch_unwind`]: one panicking item
//! never tears down the process (the old implementation's
//! `join().expect(..)` could abort outright when a second worker panicked
//! during unwinding) and never prevents the *other* items from completing.
//! After every item has run, the panic of the smallest panicking item index
//! is resumed on the caller — deterministically the same payload a
//! sequential run would have surfaced first, independent of thread count.
//! Callers that need per-item isolation (the batch engine's per-program
//! error discipline) catch around their own item body instead, in which case
//! no panic ever reaches this layer.
#![forbid(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The usual `use rayon::prelude::*;` surface.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Upper clamp of the worker budget: far above any plausible core count, low
/// enough that a typo (`SOAP_THREADS=100000`) cannot spawn an absurd number
/// of threads.
pub const MAX_WORKER_THREADS: usize = 512;

/// Parse a `SOAP_THREADS` / `--threads` override: a positive integer, clamped
/// to [`MAX_WORKER_THREADS`].  `None` for anything that does not parse as a
/// positive integer — callers fall back to the hardware default rather than
/// guessing what a typo meant (the same validation contract as
/// `parse_cache_shards` in `soap-sdg`).
pub fn parse_worker_threads(raw: &str) -> Option<usize> {
    let n: usize = raw.trim().parse().ok().filter(|&n| n > 0)?;
    Some(n.min(MAX_WORKER_THREADS))
}

/// The process-wide worker pool: the budget (target maximum concurrency) and
/// the number of *extra* workers currently available for reservation (the
/// calling thread of a `par_iter` is always a worker and is never counted
/// here, so `idle_extra` ranges over `0..=budget-1`).
struct Pool {
    budget: AtomicUsize,
    idle_extra: AtomicUsize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let budget = std::env::var("SOAP_THREADS")
            .ok()
            .and_then(|raw| parse_worker_threads(&raw))
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Pool {
            budget: AtomicUsize::new(budget),
            idle_extra: AtomicUsize::new(budget.saturating_sub(1)),
        }
    })
}

/// The current worker budget: the maximum number of threads this process
/// aims to keep doing parallel work at any moment (across *all* concurrent
/// and nested `par_iter`s combined).
pub fn worker_budget() -> usize {
    pool().budget.load(Ordering::Relaxed)
}

/// Override the worker budget (clamped to `1..=`[`MAX_WORKER_THREADS`]) and
/// return the previous value.  `1` makes every `par_iter` run inline on its
/// caller — the reference single-thread mode of the determinism tests.
///
/// Intended for process setup (CLI `--threads`) and between-run
/// reconfiguration (thread-scaling benches); calling it while parallel work
/// is in flight is safe but the new budget only shapes *future* reservations.
pub fn set_worker_budget(n: usize) -> usize {
    let n = n.clamp(1, MAX_WORKER_THREADS);
    let p = pool();
    let prev = p.budget.swap(n, Ordering::Relaxed);
    p.idle_extra.store(n - 1, Ordering::Relaxed);
    prev
}

/// Reserve up to `want` extra workers from the shared pool.  Returns how many
/// were granted (possibly 0: run inline).
fn reserve_extra(want: usize) -> usize {
    if want == 0 {
        return 0;
    }
    let mut granted = 0;
    let _ = pool()
        .idle_extra
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |avail| {
            granted = avail.min(want);
            Some(avail - granted)
        });
    granted
}

/// Return `n` extra workers to the pool, clamped to the budget cap so
/// releases cannot compound the idle count past any budget they observed.
///
/// The cap is read *before* the `fetch_update`, so a concurrent
/// [`set_worker_budget`] shrink landing between the two can transiently
/// leave `idle_extra = old_budget - 1`; the next reserve/release cycle
/// re-clamps it (model-checked: see
/// `tests/interleave_pool.rs::release_clamp_bounded_by_largest_observed_budget`
/// and docs/CORRECTNESS.md).  Idle extras never exceed
/// `max(budgets observed) - 1`, so the pool still cannot oversubscribe
/// relative to any configured budget.
fn release_extra(n: usize) {
    if n == 0 {
        return;
    }
    let p = pool();
    let cap = p.budget.load(Ordering::Relaxed).saturating_sub(1);
    let _ = p
        .idle_extra
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |avail| {
            Some((avail + n).min(cap))
        });
}

/// Types whose references can be iterated in parallel.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by the parallel iterator.
    type Item: Sync + 'a;

    /// Start a parallel iteration over `&self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter {
            items: self,
            min_len: 1,
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter {
            items: self,
            min_len: 1,
        }
    }
}

/// A borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
    min_len: usize,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Claim at least `min` items per scheduling step (default 1).  Raising
    /// it amortizes the shared-index atomics for very cheap items; 1 is the
    /// maximum-balance policy for heavy ones.  Purely a scheduling knob —
    /// results and their order are identical for any value.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    /// Parallel map.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            min_len: self.min_len,
            f,
        }
    }

    /// Parallel filter-map.
    pub fn filter_map<R, F>(self, f: F) -> ParFilterMap<'a, T, F>
    where
        R: Send,
        F: Fn(&T) -> Option<R> + Sync,
    {
        ParFilterMap {
            items: self.items,
            min_len: self.min_len,
            f,
        }
    }
}

/// Result of [`ParIter::map`], awaiting collection.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    min_len: usize,
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Run the map on the worker pool and gather the results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(&T) -> R + Sync,
        C: From<Vec<R>>,
    {
        C::from(run_self_scheduled(self.items, self.min_len, &self.f))
    }
}

/// Result of [`ParIter::filter_map`], awaiting collection.
pub struct ParFilterMap<'a, T, F> {
    items: &'a [T],
    min_len: usize,
    f: F,
}

impl<'a, T: Sync, F> ParFilterMap<'a, T, F> {
    /// Run the filter-map on the worker pool and gather the retained results
    /// in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(&T) -> Option<R> + Sync,
        C: From<Vec<R>>,
    {
        let per_item: Vec<Option<R>> = run_self_scheduled(self.items, self.min_len, &self.f);
        C::from(per_item.into_iter().flatten().collect::<Vec<R>>())
    }
}

/// The payload of a caught item panic.
type Panic = Box<dyn std::any::Any + Send + 'static>;

/// Run `f` over every item on the calling thread plus up to
/// `worker_budget() - 1` reserved extra workers, self-scheduling blocks of
/// `min_len` items off a shared atomic index, and return the outputs in item
/// order.
///
/// Every item runs — a panicking item is caught, the remaining items still
/// execute, and after the pool drains the panic of the *smallest* panicking
/// index is resumed on the caller (the payload a sequential run would have
/// surfaced, so the observable failure is thread-count-independent).
fn run_self_scheduled<T: Sync, R: Send>(
    items: &[T],
    min_len: usize,
    f: &(impl Fn(&T) -> R + Sync),
) -> Vec<R> {
    let n = items.len();
    if n <= 1 || worker_budget() <= 1 || min_len >= n {
        return items.iter().map(f).collect();
    }
    let extra = reserve_extra((worker_budget() - 1).min(n - 1));
    if extra == 0 {
        // Pool exhausted (e.g. nested under an outer par_iter that holds the
        // whole budget): run inline instead of oversubscribing.
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let worker = || -> Vec<(usize, Result<R, Panic>)> {
        let mut out = Vec::new();
        loop {
            let start = next.fetch_add(min_len, Ordering::Relaxed);
            if start >= n {
                break;
            }
            for (i, item) in items
                .iter()
                .enumerate()
                .take((start + min_len).min(n))
                .skip(start)
            {
                out.push((i, catch_unwind(AssertUnwindSafe(|| f(item)))));
            }
        }
        out
    };

    let mut buckets: Vec<Vec<(usize, Result<R, Panic>)>> = Vec::with_capacity(extra + 1);
    let mut worker_panic: Option<Panic> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..extra).map(|_| scope.spawn(worker)).collect();
        buckets.push(worker());
        for h in handles {
            match h.join() {
                Ok(bucket) => buckets.push(bucket),
                // Unreachable in practice (item panics are caught above), but
                // a panic in the scheduling loop itself must still surface
                // exactly once instead of aborting via a double panic.
                Err(payload) => worker_panic = Some(payload),
            }
        }
    });
    release_extra(extra);
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }

    let mut slots: Vec<Option<Result<R, Panic>>> = (0..n).map(|_| None).collect();
    for (i, outcome) in buckets.into_iter().flatten() {
        slots[i] = Some(outcome);
    }
    let mut results = Vec::with_capacity(n);
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.unwrap_or_else(|| panic!("item {i} was never scheduled")) {
            Ok(r) => results.push(r),
            Err(payload) => resume_unwind(payload),
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Serializes the tests that mutate the process-wide worker budget (unit
    /// tests of one binary run concurrently).
    static BUDGET_LOCK: Mutex<()> = Mutex::new(());

    /// Run `f` with the budget forced to `n`, restoring the previous value.
    fn with_budget<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = super::set_worker_budget(n);
        let result = f();
        super::set_worker_budget(prev);
        result
    }

    #[test]
    fn map_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = with_budget(4, || input.par_iter().map(|x| x * 2).collect());
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_preserves_order_and_drops() {
        let input: Vec<u64> = (0..1000).collect();
        let evens: Vec<u64> = with_budget(4, || {
            input
                .par_iter()
                .filter_map(|x| (x % 2 == 0).then_some(*x))
                .collect()
        });
        assert_eq!(evens, (0..1000).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn min_len_chunking_preserves_order() {
        let input: Vec<u64> = (0..997).collect();
        let out: Vec<u64> = with_budget(4, || {
            input.par_iter().with_min_len(16).map(|x| x + 1).collect()
        });
        assert_eq!(out, (1..998).collect::<Vec<_>>());
    }

    #[test]
    fn skewed_items_are_balanced_by_self_scheduling() {
        // One item 1000x heavier than the rest must not pin the others to the
        // same worker: with self-scheduling every item still completes and
        // order is preserved.  (The timing win itself is measured by the
        // perf harness; this pins the correctness under skew.)
        let mut weights = vec![1u64; 64];
        weights[0] = 1000;
        let out: Vec<u64> = with_budget(8, || {
            weights
                .par_iter()
                .map(|w| (0..*w).map(|i| i % 7).sum::<u64>())
                .collect()
        });
        assert_eq!(out.len(), 64);
        assert_eq!(out[1..], vec![0u64; 63][..]);
    }

    #[test]
    fn one_poisoned_item_does_not_kill_the_rest() {
        // Every non-poisoned item must run to completion even though item 3
        // panics, and the caller observes exactly one panic (no process
        // abort from a second panicking worker, which the old
        // `join().expect(..)` implementation risked).
        let input: Vec<u64> = (0..100).collect();
        let completed = AtomicUsize::new(0);
        let observed = with_budget(4, || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _: Vec<u64> = input
                    .par_iter()
                    .map(|x| {
                        if *x == 3 {
                            panic!("poisoned item");
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                        *x
                    })
                    .collect();
            }))
        });
        let payload = observed.expect_err("the poisoned item's panic must resurface");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "poisoned item");
        assert_eq!(completed.load(Ordering::Relaxed), 99);
    }

    #[test]
    fn first_panicking_index_wins_deterministically() {
        // With several poisoned items the caller must always observe the
        // smallest index's payload, matching what a sequential run surfaces.
        let input: Vec<u64> = (0..64).collect();
        for budget in [1usize, 4] {
            let observed = with_budget(budget, || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _: Vec<u64> = input
                        .par_iter()
                        .map(|x| {
                            if *x % 10 == 7 {
                                panic!("poisoned {x}");
                            }
                            *x
                        })
                        .collect();
                }))
            });
            let payload = observed.expect_err("a panic must resurface");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert_eq!(msg, "poisoned 7", "budget {budget}");
        }
    }

    #[test]
    fn nested_parallelism_stays_within_budget_and_is_correct() {
        // An outer par_iter holding the whole budget forces inner par_iters
        // inline; the combined result must still be correct and in order.
        let outer: Vec<u64> = (0..16).collect();
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let sums: Vec<u64> = with_budget(3, || {
            outer
                .par_iter()
                .map(|o| {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    let inner: Vec<u64> = (0..50u64).collect();
                    let s: Vec<u64> = inner.par_iter().map(|i| o * 100 + i).collect();
                    live.fetch_sub(1, Ordering::SeqCst);
                    s.iter().sum()
                })
                .collect()
        });
        let expected: Vec<u64> = (0..16)
            .map(|o| (0..50).map(|i| o * 100 + i).sum())
            .collect();
        assert_eq!(sums, expected);
        // The outer loop may use at most the budget's worth of workers; the
        // inner loops found the pool empty and ran inline on those workers.
        assert!(peak.load(Ordering::SeqCst) <= 3, "peak {peak:?}");
    }

    #[test]
    fn budget_one_runs_inline() {
        let input: Vec<u64> = (0..100).collect();
        let out: Vec<u64> = with_budget(1, || input.par_iter().map(|x| x * 3).collect());
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parse_worker_threads_validates_like_cache_shards() {
        assert_eq!(super::parse_worker_threads("1"), Some(1));
        assert_eq!(super::parse_worker_threads(" 8 "), Some(8));
        assert_eq!(
            super::parse_worker_threads("100000"),
            Some(super::MAX_WORKER_THREADS)
        );
        assert_eq!(super::parse_worker_threads("0"), None);
        assert_eq!(super::parse_worker_threads("-4"), None);
        assert_eq!(super::parse_worker_threads("eight"), None);
        assert_eq!(super::parse_worker_threads(""), None);
    }

    #[test]
    fn set_worker_budget_clamps_and_returns_previous() {
        let _guard = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let original = super::worker_budget();
        let prev = super::set_worker_budget(0);
        assert_eq!(prev, original);
        assert_eq!(super::worker_budget(), 1);
        super::set_worker_budget(usize::MAX);
        assert_eq!(super::worker_budget(), super::MAX_WORKER_THREADS);
        super::set_worker_budget(original);
    }
}
