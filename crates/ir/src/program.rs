//! Multi-statement SOAP programs.

use crate::statement::Statement;
use crate::IrError;
use soap_symbolic::Polynomial;
use std::collections::BTreeSet;
use std::fmt;

/// Metadata about one array referenced by a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Array {
    /// Array name.
    pub name: String,
    /// Dimensionality.
    pub dim: usize,
    /// True if the array is only ever read (a program input, `I ⊂ V_S`).
    pub read_only: bool,
    /// True if the array is written by some statement.
    pub written: bool,
}

/// A SOAP program: an ordered sequence of statements plus its symbolic size
/// parameters (e.g. `N`, `M`, `T`, `C_in`, …).
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Program name (kernel name in reports).
    pub name: String,
    /// The statements in program order.
    pub statements: Vec<Statement>,
}

impl Program {
    /// Build a program from statements.
    pub fn new(name: impl Into<String>, statements: Vec<Statement>) -> Self {
        Program {
            name: name.into(),
            statements,
        }
    }

    /// Validate every statement.
    pub fn validate(&self) -> Result<(), IrError> {
        for st in &self.statements {
            st.validate()?;
        }
        Ok(())
    }

    /// The symbolic size parameters of the whole program.
    pub fn parameters(&self) -> Vec<String> {
        let mut out = BTreeSet::new();
        for st in &self.statements {
            out.extend(st.parameters());
        }
        out.into_iter().collect()
    }

    /// All arrays referenced by the program, with read/write classification.
    pub fn arrays(&self) -> Vec<Array> {
        let mut names: Vec<String> = Vec::new();
        let mut written: BTreeSet<String> = BTreeSet::new();
        let mut read: BTreeSet<String> = BTreeSet::new();
        let mut dims: std::collections::BTreeMap<String, usize> = Default::default();
        for st in &self.statements {
            let w = st.output_array().to_string();
            if !names.contains(&w) {
                names.push(w.clone());
            }
            dims.entry(w.clone()).or_insert(st.output.dim());
            written.insert(w);
            for acc in &st.inputs {
                if !names.contains(&acc.array) {
                    names.push(acc.array.clone());
                }
                dims.entry(acc.array.clone()).or_insert(acc.dim());
                read.insert(acc.array.clone());
            }
        }
        names
            .into_iter()
            .map(|name| Array {
                dim: dims.get(&name).copied().unwrap_or(0),
                read_only: read.contains(&name) && !written.contains(&name),
                written: written.contains(&name),
                name,
            })
            .collect()
    }

    /// Names of the read-only (input) arrays — the set `I` of the SDG.
    pub fn input_arrays(&self) -> Vec<String> {
        self.arrays()
            .into_iter()
            .filter(|a| a.read_only)
            .map(|a| a.name)
            .collect()
    }

    /// Names of arrays written by at least one statement.
    pub fn computed_arrays(&self) -> Vec<String> {
        self.arrays()
            .into_iter()
            .filter(|a| a.written)
            .map(|a| a.name)
            .collect()
    }

    /// The statements writing into a given array.
    pub fn writers_of(&self, array: &str) -> Vec<&Statement> {
        self.statements
            .iter()
            .filter(|s| s.output_array() == array)
            .collect()
    }

    /// The total number of CDAG compute vertices belonging to `array`
    /// (`|A|` in Theorem 1): the sum of the execution counts of all statements
    /// writing into it (each execution produces a fresh version vertex).
    pub fn vertex_count_of(&self, array: &str) -> Polynomial {
        let mut total = Polynomial::zero();
        for st in self.writers_of(array) {
            total = total.add(&st.execution_count());
        }
        total
    }

    /// The total number of compute vertices `|V|` of the program CDAG.
    pub fn total_vertex_count(&self) -> Polynomial {
        let mut total = Polynomial::zero();
        for st in &self.statements {
            total = total.add(&st.execution_count());
        }
        total
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program {} (params: {})",
            self.name,
            self.parameters().join(", ")
        )?;
        for st in &self.statements {
            writeln!(f, "  {}", st)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn example_program() -> Program {
        // Figure 2 of the paper: C[i,j] = (A[i]+A[i+1])*(B[j]+B[j+1]);
        //                        E[i,j] += C[i,k]*D[k,j]
        ProgramBuilder::new("figure2")
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "M")])
                    .write("C", "i,j")
                    .read_multi("A", &["i", "i+1"])
                    .read_multi("B", &["j", "j+1"])
            })
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "K"), ("k", "0", "M")])
                    .update("E", "i,j")
                    .read("C", "i,k")
                    .read("D", "k,j")
            })
            .build()
            .unwrap()
    }

    #[test]
    fn array_classification() {
        let p = example_program();
        let arrays = p.arrays();
        let names: Vec<&str> = arrays.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["C", "A", "B", "E", "D"]);
        assert_eq!(p.input_arrays(), vec!["A", "B", "D"]);
        assert_eq!(p.computed_arrays(), vec!["C", "E"]);
    }

    #[test]
    fn vertex_counts() {
        let p = example_program();
        let mut b = std::collections::BTreeMap::new();
        b.insert("N".to_string(), 4.0);
        b.insert("M".to_string(), 3.0);
        b.insert("K".to_string(), 2.0);
        assert_eq!(p.vertex_count_of("C").eval(&b).unwrap(), 12.0);
        assert_eq!(p.vertex_count_of("E").eval(&b).unwrap(), 24.0);
        assert_eq!(p.total_vertex_count().eval(&b).unwrap(), 36.0);
        assert_eq!(p.parameters(), vec!["K", "M", "N"]);
    }

    #[test]
    fn validation_cascades_to_statements() {
        let p = example_program();
        assert!(p.validate().is_ok());
    }
}
