//! The 30 Polybench/C 4.2 kernels as SOAP programs.
//!
//! Each function returns the kernel's dominant computational loop nests with
//! the loop and subscript structure of the reference C implementation.
//! Where the reference code is not directly a SOAP (in-place updates,
//! time-stepping stencils with array swapping), the Section-5 projections of
//! the paper are applied and documented:
//!
//! * stencil time loops are expressed with an explicit time subscript
//!   (`A[i, t+1] = f(A[i±1, t])` — the §5.2 version dimension);
//! * `+=` reductions use the builder's `update` form (the version dimension
//!   along the reduction loop);
//! * symmetric-matrix accesses (`symm`) are modelled with the full rectangular
//!   iteration space of the dense operation, as in the paper's Table 2.
//!
//! Parameter names follow Polybench (`N`, `M`, `TSTEPS`, `NI`, `NJ`, …), with
//! `TSTEPS` shortened to `T`.

// lint:allow-file(unwrap-expect): kernel definitions are static tables; an invalid program is an authoring bug caught by tier-1 tests, not a runtime condition
use soap_ir::{Program, ProgramBuilder};

/// `gemm`: `C[i,j] += A[i,k]·B[k,j]` over `NI × NJ × NK`.
pub fn gemm() -> Program {
    ProgramBuilder::new("gemm")
        .statement(|st| {
            st.loops(&[("i", "0", "NI"), ("j", "0", "NJ"), ("k", "0", "NK")])
                .update("C", "i,j")
                .read("A", "i,k")
                .read("B", "k,j")
        })
        .build()
        .expect("gemm is a valid SOAP program")
}

/// `2mm`: `tmp = A·B`, `D += tmp·C`.
pub fn two_mm() -> Program {
    ProgramBuilder::new("2mm")
        .statement(|st| {
            st.loops(&[("i", "0", "NI"), ("j", "0", "NJ"), ("k", "0", "NK")])
                .update("tmp", "i,j")
                .read("A", "i,k")
                .read("B", "k,j")
        })
        .statement(|st| {
            st.loops(&[("i", "0", "NI"), ("l", "0", "NL"), ("j", "0", "NJ")])
                .update("D", "i,l")
                .read("tmp", "i,j")
                .read("C", "j,l")
        })
        .build()
        .expect("2mm is a valid SOAP program")
}

/// `3mm`: `E = A·B`, `F = C·D`, `G = E·F`.
pub fn three_mm() -> Program {
    ProgramBuilder::new("3mm")
        .statement(|st| {
            st.loops(&[("i", "0", "NI"), ("j", "0", "NJ"), ("k", "0", "NK")])
                .update("E", "i,j")
                .read("A", "i,k")
                .read("B", "k,j")
        })
        .statement(|st| {
            st.loops(&[("j", "0", "NJ"), ("l", "0", "NL"), ("m", "0", "NM")])
                .update("F", "j,l")
                .read("C", "j,m")
                .read("D", "m,l")
        })
        .statement(|st| {
            st.loops(&[("i", "0", "NI"), ("l", "0", "NL"), ("j", "0", "NJ")])
                .update("G", "i,l")
                .read("E", "i,j")
                .read("F", "j,l")
        })
        .build()
        .expect("3mm is a valid SOAP program")
}

/// `atax`: `tmp = A·x`, `y = Aᵀ·tmp`.
pub fn atax() -> Program {
    ProgramBuilder::new("atax")
        .statement(|st| {
            st.loops(&[("i", "0", "M"), ("j", "0", "N")])
                .update("tmp", "i")
                .read("A", "i,j")
                .read("x", "j")
        })
        .statement(|st| {
            st.loops(&[("i", "0", "M"), ("j", "0", "N")])
                .update("y", "j")
                .read("A", "i,j")
                .read("tmp", "i")
        })
        .build()
        .expect("atax is a valid SOAP program")
}

/// `bicg`: `s = Aᵀ·r`, `q = A·p`.
pub fn bicg() -> Program {
    ProgramBuilder::new("bicg")
        .statement(|st| {
            st.loops(&[("i", "0", "N"), ("j", "0", "M")])
                .update("s", "j")
                .read("A", "i,j")
                .read("r", "i")
        })
        .statement(|st| {
            st.loops(&[("i", "0", "N"), ("j", "0", "M")])
                .update("q", "i")
                .read("A", "i,j")
                .read("p", "j")
        })
        .build()
        .expect("bicg is a valid SOAP program")
}

/// `mvt`: `x1 += A·y1`, `x2 += Aᵀ·y2`.
pub fn mvt() -> Program {
    ProgramBuilder::new("mvt")
        .statement(|st| {
            st.loops(&[("i", "0", "N"), ("j", "0", "N")])
                .update("x1", "i")
                .read("A", "i,j")
                .read("y1", "j")
        })
        .statement(|st| {
            st.loops(&[("i", "0", "N"), ("j", "0", "N")])
                .update("x2", "i")
                .read("A", "j,i")
                .read("y2", "j")
        })
        .build()
        .expect("mvt is a valid SOAP program")
}

/// `gemver`: rank-2 update of `A`, then two matrix-vector products.
pub fn gemver() -> Program {
    ProgramBuilder::new("gemver")
        .statement(|st| {
            st.loops(&[("i", "0", "N"), ("j", "0", "N")])
                .write("B", "i,j")
                .read("A", "i,j")
                .read("u1", "i")
                .read("v1", "j")
                .read("u2", "i")
                .read("v2", "j")
        })
        .statement(|st| {
            st.loops(&[("i", "0", "N"), ("j", "0", "N")])
                .update("x", "i")
                .read("B", "j,i")
                .read("y", "j")
        })
        .statement(|st| {
            st.loops(&[("i", "0", "N"), ("j", "0", "N")])
                .update("w", "i")
                .read("B", "i,j")
                .read("x", "j")
        })
        .build()
        .expect("gemver is a valid SOAP program")
}

/// `gesummv`: `tmp = A·x`, `y = B·x` (then scaled and summed element-wise).
pub fn gesummv() -> Program {
    ProgramBuilder::new("gesummv")
        .statement(|st| {
            st.loops(&[("i", "0", "N"), ("j", "0", "N")])
                .update("tmp", "i")
                .read("A", "i,j")
                .read("x", "j")
        })
        .statement(|st| {
            st.loops(&[("i", "0", "N"), ("j", "0", "N")])
                .update("y", "i")
                .read("B", "i,j")
                .read("x", "j")
        })
        .statement(|st| {
            st.loops(&[("i", "0", "N")])
                .write("z", "i")
                .read("tmp", "i")
                .read("y", "i")
        })
        .build()
        .expect("gesummv is a valid SOAP program")
}

/// `symm`: symmetric matrix-matrix multiply; the dominant dense triple loop is
/// modelled over its full rectangular iteration space (the symmetric access to
/// `A` is projected onto a plain dense access, as in the paper).
pub fn symm() -> Program {
    ProgramBuilder::new("symm")
        .statement(|st| {
            st.loops(&[("i", "0", "M"), ("j", "0", "N"), ("k", "0", "M")])
                .update("C", "i,j")
                .read("A", "i,k")
                .read("B", "k,j")
        })
        .build()
        .expect("symm is a valid SOAP program")
}

/// `syrk`: `C[i,j] += A[i,k]·A[j,k]` over the lower triangle.
pub fn syrk() -> Program {
    ProgramBuilder::new("syrk")
        .statement(|st| {
            st.loops(&[("i", "0", "N"), ("j", "0", "i+1"), ("k", "0", "M")])
                .update("C", "i,j")
                .read("A", "i,k")
                .read("A", "j,k")
        })
        .build()
        .expect("syrk is a valid SOAP program")
}

/// `syr2k`: `C[i,j] += A[i,k]·B[j,k] + A[j,k]·B[i,k]` over the lower triangle.
pub fn syr2k() -> Program {
    ProgramBuilder::new("syr2k")
        .statement(|st| {
            st.loops(&[("i", "0", "N"), ("j", "0", "i+1"), ("k", "0", "M")])
                .update("C", "i,j")
                .read("A", "i,k")
                .read("A", "j,k")
                .read("B", "i,k")
                .read("B", "j,k")
        })
        .build()
        .expect("syr2k is a valid SOAP program")
}

/// `trmm`: triangular matrix multiply `B[i,j] += A[k,i]·B[k,j]`, `k > i`.
pub fn trmm() -> Program {
    ProgramBuilder::new("trmm")
        .statement(|st| {
            st.loops(&[("i", "0", "M"), ("j", "0", "N"), ("k", "i+1", "M")])
                .update("B", "i,j")
                .read("A", "k,i")
                .read("B", "k,j")
        })
        .build()
        .expect("trmm is a valid SOAP program")
}

/// `doitgen`: `sum[r,q,p] += A[r,q,s]·C4[s,p]`, then copied back into `A`.
pub fn doitgen() -> Program {
    ProgramBuilder::new("doitgen")
        .statement(|st| {
            st.loops(&[
                ("r", "0", "NR"),
                ("q", "0", "NQ"),
                ("p", "0", "NP"),
                ("s", "0", "NP"),
            ])
            .update("sum", "r,q,p")
            .read("A", "r,q,s")
            .read("C4", "s,p")
        })
        .statement(|st| {
            st.loops(&[("r", "0", "NR"), ("q", "0", "NQ"), ("p", "0", "NP")])
                .write("Aout", "r,q,p")
                .read("sum", "r,q,p")
        })
        .build()
        .expect("doitgen is a valid SOAP program")
}

/// `cholesky`: the dominant trailing update `A[i,j] -= A[i,k]·A[j,k]`
/// (`k < j ≤ i`); the §5.1 split applies because the loop bounds keep the
/// three accesses disjoint.
pub fn cholesky() -> Program {
    ProgramBuilder::new("cholesky")
        .statement(|st| {
            st.loops(&[("i", "0", "N"), ("j", "0", "i"), ("k", "0", "j")])
                .update("A", "i,j")
                .read("A", "i,k")
                .read("A", "j,k")
        })
        .statement(|st| {
            st.loops(&[("i", "0", "N"), ("k", "0", "i")])
                .update("Adiag", "i")
                .read("A", "i,k")
        })
        .build()
        .expect("cholesky is a valid SOAP program")
}

/// `lu`: the dominant trailing update `A[i,j] -= A[i,k]·A[k,j]` (`i,j > k`).
pub fn lu() -> Program {
    ProgramBuilder::new("lu")
        .statement(|st| {
            st.loops(&[("k", "0", "N"), ("i", "k+1", "N"), ("j", "k+1", "N")])
                .update("A", "i,j")
                .read("A", "i,k")
                .read("A", "k,j")
        })
        .build()
        .expect("lu is a valid SOAP program")
}

/// `ludcmp`: LU factorization plus the two triangular solves.
pub fn ludcmp() -> Program {
    ProgramBuilder::new("ludcmp")
        .statement(|st| {
            st.loops(&[("k", "0", "N"), ("i", "k+1", "N"), ("j", "k+1", "N")])
                .update("A", "i,j")
                .read("A", "i,k")
                .read("A", "k,j")
        })
        .statement(|st| {
            st.loops(&[("i", "0", "N"), ("j", "0", "i")])
                .update("y", "i")
                .read("A", "i,j")
                .read("y", "j")
        })
        .statement(|st| {
            st.loops(&[("i", "0", "N"), ("j", "i+1", "N")])
                .update("x", "i")
                .read("A", "i,j")
                .read("x", "j")
        })
        .build()
        .expect("ludcmp is a valid SOAP program")
}

/// `correlation`: the dominant `corr[i,j] += data[k,i]·data[k,j]` (`j > i`).
pub fn correlation() -> Program {
    ProgramBuilder::new("correlation")
        .statement(|st| {
            st.loops(&[("i", "0", "M"), ("j", "i+1", "M"), ("k", "0", "N")])
                .update("corr", "i,j")
                .read("data", "k,i")
                .read("data", "k,j")
        })
        .statement(|st| {
            st.loops(&[("j", "0", "M"), ("i", "0", "N")])
                .update("mean", "j")
                .read("data", "i,j")
        })
        .build()
        .expect("correlation is a valid SOAP program")
}

/// `covariance`: structurally identical to `correlation`.
pub fn covariance() -> Program {
    ProgramBuilder::new("covariance")
        .statement(|st| {
            st.loops(&[("i", "0", "M"), ("j", "i+1", "M"), ("k", "0", "N")])
                .update("cov", "i,j")
                .read("data", "k,i")
                .read("data", "k,j")
        })
        .statement(|st| {
            st.loops(&[("j", "0", "M"), ("i", "0", "N")])
                .update("mean", "j")
                .read("data", "i,j")
        })
        .build()
        .expect("covariance is a valid SOAP program")
}

/// `gramschmidt`: the two dominant statements `R[k,j] += Q[i,k]·A[i,j]` and
/// `A[i,j] -= Q[i,k]·R[k,j]`.
pub fn gramschmidt() -> Program {
    ProgramBuilder::new("gramschmidt")
        .statement(|st| {
            st.loops(&[("k", "0", "N"), ("j", "k+1", "N"), ("i", "0", "M")])
                .update("R", "k,j")
                .read("Q", "i,k")
                .read("A", "i,j")
        })
        .statement(|st| {
            st.loops(&[("k", "0", "N"), ("j", "k+1", "N"), ("i", "0", "M")])
                .update("A2", "i,j")
                .read("Q", "i,k")
                .read("R", "k,j")
        })
        .build()
        .expect("gramschmidt is a valid SOAP program")
}

/// `durbin`: Toeplitz solver; the dominant quadratic recurrences, with the
/// reversed access `y[k-i-1]` kept as a (non-injective) linear subscript.
pub fn durbin() -> Program {
    ProgramBuilder::new("durbin")
        .statement(|st| {
            st.loops(&[("k", "1", "N"), ("i", "0", "k")])
                .update("sum", "k")
                .read("r", "k-i-1")
                .read("y", "i,k-1")
        })
        .statement(|st| {
            st.loops(&[("k", "1", "N"), ("i", "0", "k")])
                .write("y", "i,k")
                .read("y", "i,k-1")
                .read("yrev", "k-i-1")
                .read("alpha", "k")
        })
        .build()
        .expect("durbin is a valid SOAP program")
}

/// `trisolv`: forward substitution `x[i] -= L[i,j]·x[j]` (`j < i`).
pub fn trisolv() -> Program {
    ProgramBuilder::new("trisolv")
        .statement(|st| {
            st.loops(&[("i", "0", "N"), ("j", "0", "i")])
                .update("x", "i")
                .read("L", "i,j")
                .read("x", "j")
        })
        .build()
        .expect("trisolv is a valid SOAP program")
}

/// `deriche`: recursive 2-D edge-detection filter; the four directional
/// recurrences plus the combination pass (all bandwidth-bound).
pub fn deriche() -> Program {
    ProgramBuilder::new("deriche")
        .statement(|st| {
            st.loops(&[("i", "0", "W"), ("j", "0", "H")])
                .write("y1", "i,j")
                .read("imgIn", "i,j")
                .read_multi("y1", &["i,j-1", "i,j-2"])
        })
        .statement(|st| {
            st.loops(&[("i", "0", "W"), ("j", "0", "H")])
                .write("y2", "i,j")
                .read_multi("imgIn", &["i,j+1", "i,j+2"])
                .read_multi("y2", &["i,j+1", "i,j+2"])
        })
        .statement(|st| {
            st.loops(&[("i", "0", "W"), ("j", "0", "H")])
                .write("imgOut", "i,j")
                .read("y1", "i,j")
                .read("y2", "i,j")
        })
        .build()
        .expect("deriche is a valid SOAP program")
}

/// `floyd-warshall`: `path[i,j] = min(path[i,j], path[i,k] + path[k,j])`.
pub fn floyd_warshall() -> Program {
    ProgramBuilder::new("floyd-warshall")
        .statement(|st| {
            st.loops(&[("k", "0", "N"), ("i", "0", "N"), ("j", "0", "N")])
                .update("path", "i,j")
                .read("path", "i,k")
                .read("path", "k,j")
        })
        .build()
        .expect("floyd-warshall is a valid SOAP program")
}

/// `nussinov`: RNA secondary-structure dynamic program; the dominant
/// `table[i,j] = max(table[i,j], table[i,k] + table[k+1,j])` band.
pub fn nussinov() -> Program {
    ProgramBuilder::new("nussinov")
        .statement(|st| {
            st.loops(&[("i", "0", "N"), ("j", "i+1", "N"), ("k", "i", "j")])
                .update("table", "i,j")
                .read("table", "i,k")
                .read("table", "k+1,j")
        })
        .build()
        .expect("nussinov is a valid SOAP program")
}

/// `adi`: alternating-direction implicit solver; the two directional sweeps
/// per time step with their first-order recurrences, time-versioned (§5.2).
pub fn adi() -> Program {
    ProgramBuilder::new("adi")
        .statement(|st| {
            st.loops(&[("t", "1", "T"), ("i", "1", "N - 1"), ("j", "1", "N - 1")])
                .write("v", "j,i,t")
                .read("v", "j-1,i,t")
                .read_multi("u", &["i,j-1,t-1", "i,j,t-1", "i,j+1,t-1"])
        })
        .statement(|st| {
            st.loops(&[("t", "1", "T"), ("i", "1", "N - 1"), ("j", "1", "N - 1")])
                .write("u", "i,j,t")
                .read("u", "i,j-1,t")
                .read_multi("v", &["j,i-1,t", "j,i,t", "j,i+1,t"])
        })
        .build()
        .expect("adi is a valid SOAP program")
}

/// `fdtd-2d`: the three coupled 2-D FDTD field updates, time-versioned (§5.2).
pub fn fdtd2d() -> Program {
    ProgramBuilder::new("fdtd-2d")
        .statement(|st| {
            st.loops(&[("t", "1", "T"), ("i", "1", "NX"), ("j", "0", "NY")])
                .write("ey", "i,j,t")
                .read("ey", "i,j,t-1")
                .read_multi("hz", &["i,j,t-1", "i-1,j,t-1"])
        })
        .statement(|st| {
            st.loops(&[("t", "1", "T"), ("i", "0", "NX"), ("j", "1", "NY")])
                .write("ex", "i,j,t")
                .read("ex", "i,j,t-1")
                .read_multi("hz", &["i,j,t-1", "i,j-1,t-1"])
        })
        .statement(|st| {
            st.loops(&[("t", "1", "T"), ("i", "0", "NX - 1"), ("j", "0", "NY - 1")])
                .write("hz", "i,j,t")
                .read("hz", "i,j,t-1")
                .read_multi("ex", &["i,j+1,t", "i,j,t"])
                .read_multi("ey", &["i+1,j,t", "i,j,t"])
        })
        .build()
        .expect("fdtd-2d is a valid SOAP program")
}

/// `heat-3d`: 7-point 3-D heat stencil, time-versioned (§5.2).
pub fn heat3d() -> Program {
    ProgramBuilder::new("heat-3d")
        .statement(|st| {
            st.loops(&[
                ("t", "1", "T"),
                ("i", "1", "N - 1"),
                ("j", "1", "N - 1"),
                ("k", "1", "N - 1"),
            ])
            .write("A", "i,j,k,t")
            .read_multi(
                "A",
                &[
                    "i,j,k,t-1",
                    "i-1,j,k,t-1",
                    "i+1,j,k,t-1",
                    "i,j-1,k,t-1",
                    "i,j+1,k,t-1",
                    "i,j,k-1,t-1",
                    "i,j,k+1,t-1",
                ],
            )
        })
        .build()
        .expect("heat-3d is a valid SOAP program")
}

/// `jacobi-1d`: 3-point 1-D stencil, time-versioned (§5.2).
pub fn jacobi1d() -> Program {
    ProgramBuilder::new("jacobi-1d")
        .statement(|st| {
            st.loops(&[("t", "1", "T"), ("i", "1", "N - 1")])
                .write("A", "i,t")
                .read_multi("A", &["i-1,t-1", "i,t-1", "i+1,t-1"])
        })
        .build()
        .expect("jacobi-1d is a valid SOAP program")
}

/// `jacobi-2d`: 5-point 2-D stencil, time-versioned (§5.2).
pub fn jacobi2d() -> Program {
    ProgramBuilder::new("jacobi-2d")
        .statement(|st| {
            st.loops(&[("t", "1", "T"), ("i", "1", "N - 1"), ("j", "1", "N - 1")])
                .write("A", "i,j,t")
                .read_multi(
                    "A",
                    &[
                        "i,j,t-1",
                        "i-1,j,t-1",
                        "i+1,j,t-1",
                        "i,j-1,t-1",
                        "i,j+1,t-1",
                    ],
                )
        })
        .build()
        .expect("jacobi-2d is a valid SOAP program")
}

/// `seidel-2d`: in-place 9-point Gauss–Seidel sweep, time-versioned (§5.2);
/// the in-place update mixes the current and previous sweep's values.
pub fn seidel2d() -> Program {
    ProgramBuilder::new("seidel-2d")
        .statement(|st| {
            st.loops(&[("t", "1", "T"), ("i", "1", "N - 1"), ("j", "1", "N - 1")])
                .write("A", "i,j,t")
                .read_multi(
                    "A",
                    &[
                        "i-1,j-1,t",
                        "i-1,j,t",
                        "i-1,j+1,t",
                        "i,j-1,t",
                        "i,j,t-1",
                        "i,j+1,t-1",
                        "i+1,j-1,t-1",
                        "i+1,j,t-1",
                        "i+1,j+1,t-1",
                    ],
                )
        })
        .build()
        .expect("seidel-2d is a valid SOAP program")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_builds_and_validates() {
        let kernels: Vec<Program> = vec![
            gemm(),
            two_mm(),
            three_mm(),
            atax(),
            bicg(),
            mvt(),
            gemver(),
            gesummv(),
            symm(),
            syrk(),
            syr2k(),
            trmm(),
            doitgen(),
            cholesky(),
            lu(),
            ludcmp(),
            correlation(),
            covariance(),
            gramschmidt(),
            durbin(),
            trisolv(),
            deriche(),
            floyd_warshall(),
            nussinov(),
            adi(),
            fdtd2d(),
            heat3d(),
            jacobi1d(),
            jacobi2d(),
            seidel2d(),
        ];
        assert_eq!(kernels.len(), 30);
        for k in &kernels {
            assert!(k.validate().is_ok(), "kernel {} failed validation", k.name);
        }
    }

    #[test]
    fn triangular_domains_have_the_expected_cardinality() {
        let mut b = std::collections::BTreeMap::new();
        b.insert("N".to_string(), 12.0);
        // lu: Σ_k (N-1-k)² = 506 for N = 12.
        let lu_count = lu().statements[0].execution_count();
        let mut brute = 0.0;
        for k in 0..12 {
            brute += ((12 - k - 1) * (12 - k - 1)) as f64;
        }
        assert_eq!(lu_count.eval(&b).unwrap(), brute);
        // cholesky trailing update: Σ_i Σ_{j<i} j  (k < j).
        let chol_count = cholesky().statements[0].execution_count();
        let mut brute = 0.0;
        for i in 0..12 {
            for j in 0..i {
                brute += j as f64;
            }
        }
        assert_eq!(chol_count.eval(&b).unwrap(), brute);
    }

    #[test]
    fn stencils_use_time_versioned_accesses() {
        for p in [
            jacobi1d(),
            jacobi2d(),
            heat3d(),
            seidel2d(),
            fdtd2d(),
            adi(),
        ] {
            for st in &p.statements {
                // The output array must also be read (the §5.2 projection), so
                // the analysis can apply Corollary 1.
                assert!(
                    st.input_arrays().contains(&st.output_array().to_string())
                        || p.statements.len() > 1,
                    "{}: {} does not read its own output array",
                    p.name,
                    st.name
                );
            }
        }
    }
}
