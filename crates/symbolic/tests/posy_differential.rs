//! Differential property tests for the compiled posynomial core: over
//! randomized posynomials, the compiled evaluation must match `Expr::eval`
//! exactly (same multiset of monomials, IEEE-summed), and the analytic
//! log-space gradients must match central differences of the `Expr` tree.

use soap_symbolic::{CompiledPosynomial, Expr, MaxPosynomial, MaxScratch, Rational};
use std::collections::BTreeMap;

/// Deterministic xorshift64* generator so every run checks the same cases.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// A point component in `[1, 50)` — the extents the solver visits.
    fn point(&mut self) -> f64 {
        1.0 + (self.next() % 4900) as f64 / 100.0
    }
}

fn var_names(n: usize) -> Vec<String> {
    (0..n).map(|t| format!("D_{t}")).collect()
}

/// A random posynomial over `n` variables: `terms` monomials with integer
/// coefficients in `1..=9` and exponents in `0..=3`.
fn random_posynomial(rng: &mut XorShift, n: usize, terms: usize) -> Expr {
    let vars = var_names(n);
    let mut sum = Expr::zero();
    for _ in 0..terms {
        let mut term = Expr::int(1 + rng.below(9) as i64);
        for v in &vars {
            let e = rng.below(4) as i128;
            if e > 0 {
                term = term.mul(Expr::sym(v).pow(Rational::int(e)));
            }
        }
        sum = sum.add(term);
    }
    sum
}

fn bindings(vars: &[String], x: &[f64]) -> BTreeMap<String, f64> {
    vars.iter().cloned().zip(x.iter().copied()).collect()
}

#[test]
fn compiled_eval_matches_expr_eval_on_random_posynomials() {
    let mut rng = XorShift(0x5eed0001);
    for case in 0..200 {
        let n = 1 + rng.below(6) as usize;
        let terms = 1 + rng.below(8) as usize;
        let vars = var_names(n);
        let e = random_posynomial(&mut rng, n, terms);
        let p = CompiledPosynomial::compile(&e, &vars)
            .unwrap_or_else(|| panic!("case {case}: posynomial failed to compile: {e}"));
        for _ in 0..5 {
            let x: Vec<f64> = (0..n).map(|_| rng.point()).collect();
            let expected = e.eval(&bindings(&vars, &x)).unwrap();
            let got = p.eval(&x);
            let rel = (got - expected).abs() / expected.abs().max(1.0);
            assert!(
                rel < 1e-12,
                "case {case}: eval mismatch at {x:?}: {got} vs {expected} ({e})"
            );
        }
    }
}

#[test]
fn analytic_gradients_match_central_differences() {
    let mut rng = XorShift(0x5eed0002);
    for case in 0..100 {
        let n = 1 + rng.below(5) as usize;
        let terms = 1 + rng.below(6) as usize;
        let vars = var_names(n);
        let e = random_posynomial(&mut rng, n, terms);
        let p = CompiledPosynomial::compile(&e, &vars).expect("posynomial compiles");
        let x: Vec<f64> = (0..n).map(|_| rng.point()).collect();
        let mut term_values = vec![0.0; p.n_terms()];
        p.eval_terms(&x, &mut term_values);
        let mut grad = vec![0.0; n];
        p.grad_log_from_terms(&term_values, &mut grad);
        // Central differences of Expr::eval in log space.  The error scale
        // includes the function value: the FD quotient carries cancellation
        // noise of order `ulp(f)/h`, so a gradient component tiny relative to
        // `f` cannot be resolved more precisely than that.
        let f_val = e.eval(&bindings(&vars, &x)).unwrap();
        let h: f64 = 1e-5;
        for t in 0..n {
            let mut up = x.clone();
            let mut dn = x.clone();
            up[t] *= h.exp();
            dn[t] *= (-h).exp();
            let fd = (e.eval(&bindings(&vars, &up)).unwrap()
                - e.eval(&bindings(&vars, &dn)).unwrap())
                / (2.0 * h);
            let scale = f_val.abs() + grad[t].abs();
            assert!(
                (grad[t] - fd).abs() / scale < 1e-5,
                "case {case}: d/dlog {} mismatch: analytic {} vs fd {} ({e})",
                vars[t],
                grad[t],
                fd
            );
        }
    }
}

#[test]
fn max_posynomial_eval_and_gradient_match_expr() {
    let mut rng = XorShift(0x5eed0003);
    for case in 0..100 {
        let n = 2 + rng.below(4) as usize;
        let vars = var_names(n);
        // base posynomial + max(p1, p2)·monomial — the merged-dominator shape.
        let (t0, t1, t2) = (
            1 + rng.below(4) as usize,
            1 + rng.below(3) as usize,
            1 + rng.below(3) as usize,
        );
        let base = random_posynomial(&mut rng, n, t0);
        let b1 = random_posynomial(&mut rng, n, t1);
        let b2 = random_posynomial(&mut rng, n, t2);
        let factor = Expr::sym(&vars[rng.below(n as u64) as usize]);
        let e = base.clone().add(b1.clone().max(b2.clone()).mul(factor));
        let m = MaxPosynomial::compile(&e, &vars)
            .unwrap_or_else(|| panic!("case {case}: max-posynomial failed to compile: {e}"));
        let mut scratch = MaxScratch::default();
        for _ in 0..5 {
            let x: Vec<f64> = (0..n).map(|_| rng.point()).collect();
            let expected = e.eval(&bindings(&vars, &x)).unwrap();
            let got = m.eval(&x, &mut scratch);
            let rel = (got - expected).abs() / expected.abs().max(1.0);
            assert!(
                rel < 1e-12,
                "case {case}: max-eval mismatch at {x:?}: {got} vs {expected}"
            );
            // Gradient vs central differences, skipping points too close to a
            // kink (where the subgradient and the straddling difference
            // legitimately disagree).
            let v1 = b1.eval(&bindings(&vars, &x)).unwrap();
            let v2 = b2.eval(&bindings(&vars, &x)).unwrap();
            if (v1 - v2).abs() < 1e-3 * v1.abs().max(v2.abs()) {
                continue;
            }
            let mut grad = vec![0.0; n];
            m.eval_grad(&x, &mut grad, &mut scratch);
            let h: f64 = 1e-5;
            for t in 0..n {
                let mut up = x.clone();
                let mut dn = x.clone();
                up[t] *= h.exp();
                dn[t] *= (-h).exp();
                let fd = (e.eval(&bindings(&vars, &up)).unwrap()
                    - e.eval(&bindings(&vars, &dn)).unwrap())
                    / (2.0 * h);
                let scale = expected.abs() + grad[t].abs();
                assert!(
                    (grad[t] - fd).abs() / scale < 1e-4,
                    "case {case}: max-grad d/dlog {} mismatch: {} vs {}",
                    vars[t],
                    grad[t],
                    fd
                );
            }
        }
    }
}

#[test]
fn eval_single_agrees_with_map_eval_on_random_intensities() {
    let mut rng = XorShift(0x5eed0004);
    for _ in 0..100 {
        // c · S^(p/q) — the shape of every intensity expression.
        let c = Rational::new(1 + rng.below(20) as i128, 1 + rng.below(6) as i128);
        let p = rng.below(5) as i128;
        let q = 1 + rng.below(4) as i128;
        let rho = Expr::num(c).mul(Expr::sym("S").pow(Rational::new(p, q)));
        let s = 1.0 + rng.below(1_000_000) as f64;
        let mut b = BTreeMap::new();
        b.insert("S".to_string(), s);
        assert_eq!(rho.eval_single("S", s), rho.eval(&b));
    }
}
