//! # soap-symbolic
//!
//! Exact rational and symbolic math substrate for the SOAP I/O lower-bound
//! analysis.  The paper ("Pebbles, Graphs, and a Pinch of Combinatorics",
//! SPAA 2021) performs its derivations with the MATLAB symbolic toolbox; this
//! crate provides the equivalent machinery from scratch:
//!
//! * [`Rational`] — exact arithmetic over `i128`.
//! * [`Expr`] — symbolic expressions (sums, products, rational powers, min/max)
//!   with simplification, differentiation, substitution, and evaluation.
//! * [`Polynomial`] — sparse multivariate polynomials, used for exact
//!   iteration-domain counting (including Faulhaber summation over affine
//!   bounds, which handles triangular loop nests such as Cholesky or LU).
//! * [`lp`] — a small exact-rational simplex solver for the access-exponent LP
//!   that determines the exponent σ of `χ(X) = c·X^σ`.
//! * [`posy`] — compiled posynomial forms (dense exponent matrix + flat
//!   coefficients) with allocation-free evaluation and analytic log-space
//!   gradients, the data layout every hot solver probe runs on.
//! * [`opt`] — the numeric KKT solver for the constrained product maximization
//!   (optimization problem (8) of the paper) and the power-law fitting that
//!   recovers the constant `c`.
//! * [`closed_form`] — recognition of fitted constants as low-degree algebraic
//!   numbers so that bounds print like the paper's (`2N³/√S`, `12N²T/√S`, …).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closed_form;
pub mod expr;
pub mod intern;
pub mod lp;
pub mod opt;
pub mod poly;
pub mod posy;
pub mod rational;

pub use closed_form::ClosedForm;
pub use expr::Expr;
pub use intern::Symbol;
pub use lp::LinearProgram;
pub use opt::{
    reset_solver_counters, solver_counters, CompiledConstraint, ConstrainedProduct, PowerLaw,
    SolveInfo, SolverCounters, KKT_HISTOGRAM_EDGES, KKT_ITERATION_CAP, POWER_LAW_PROBES,
};
pub use poly::{Monomial, Polynomial};
pub use posy::{CompiledPosynomial, MaxPosynomial, MaxScratch};
pub use rational::Rational;
