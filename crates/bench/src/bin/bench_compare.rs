//! Compare two `BENCH_*.json` perf snapshots by per-bench median ratio and
//! fail loudly on regressions — the CI tripwire for the solver hot path.
//!
//! ```text
//! bench_compare --new BENCH_PR2.json --base BENCH_PR1.json \
//!     [--max-ratio 2.0] [--require "sdg_scaling/35<=0.34"]... \
//!     [--require-within "suite/registry_batch<=0.95*suite/registry_sequential"]...
//! ```
//!
//! Every bench present in both files is compared as `new/base`; any ratio
//! above `--max-ratio` (default 2.0 — the snapshots are medians from the same
//! host, so honest noise stays well under that) is a failure.  `--require`
//! pins a specific bench to a *maximum* ratio, e.g. `<=0.34` asserts the PR's
//! claimed ≥3× improvement is actually present in the committed snapshot.
//! `--require-within` relates two benches of the *new* snapshot
//! (`A<=R*B` asserts `median(A) ≤ R·median(B)`) — used to pin the
//! whole-suite batch wall clock under the per-program sequential baseline
//! recorded in the same run, where host noise cancels.
//!
//! `--base` is optional: without it the new snapshot doubles as its own
//! baseline, making every cross-file ratio trivially 1.0 while
//! `--require-within` guards still bite — the mode CI uses to assert
//! intra-snapshot relations (e.g. thread-scaling wins) on a freshly
//! generated file with no committed counterpart.

#![forbid(unsafe_code)]

use serde_json::Value;

fn median_ms(report: &Value, name: &str) -> Option<f64> {
    let benches = report.get("benches")?.as_array()?;
    for b in benches {
        if b.get("name").and_then(Value::as_str) == Some(name) {
            return as_f64(b.get("median_ms")?);
        }
    }
    None
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        Value::Int(n) => Some(*n as f64),
        _ => None,
    }
}

fn bench_names(report: &Value) -> Vec<String> {
    report
        .get("benches")
        .and_then(Value::as_array)
        .map(|benches| {
            benches
                .iter()
                .filter_map(|b| b.get("name").and_then(Value::as_str).map(str::to_string))
                .collect()
        })
        .unwrap_or_default()
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e:?}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut new_path = None;
    let mut base_path = None;
    let mut max_ratio = 2.0f64;
    let mut requirements: Vec<(String, f64)> = Vec::new();
    let mut within_requirements: Vec<(String, f64, String)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--new" => {
                i += 1;
                new_path = args.get(i).cloned();
            }
            "--base" => {
                i += 1;
                base_path = args.get(i).cloned();
            }
            "--max-ratio" => {
                i += 1;
                max_ratio = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--max-ratio takes a float");
            }
            "--require" => {
                i += 1;
                let spec = args.get(i).expect("--require takes NAME<=RATIO");
                let (name, ratio) = spec
                    .split_once("<=")
                    .expect("--require spec must be NAME<=RATIO");
                requirements.push((
                    name.trim().to_string(),
                    ratio.trim().parse().expect("ratio must be a float"),
                ));
            }
            "--require-within" => {
                i += 1;
                let spec = args
                    .get(i)
                    .expect("--require-within takes NAME<=RATIO*OTHER");
                let (name, rhs) = spec
                    .split_once("<=")
                    .expect("--require-within spec must be NAME<=RATIO*OTHER");
                let (ratio, other) = rhs
                    .split_once('*')
                    .expect("--require-within spec must be NAME<=RATIO*OTHER");
                within_requirements.push((
                    name.trim().to_string(),
                    ratio.trim().parse().expect("ratio must be a float"),
                    other.trim().to_string(),
                ));
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let new_path = new_path.expect("--new FILE is required");
    // Self-referential mode: with no baseline file every new/base ratio is
    // 1.0 by construction, so only --require-within relations can fail.
    let base_path = base_path.unwrap_or_else(|| new_path.clone());
    let new_report = load(&new_path);
    let base_report = load(&base_path);

    let mut failures: Vec<String> = Vec::new();
    println!(
        "{:<40} {:>12} {:>12} {:>8}",
        "bench", "base[ms]", "new[ms]", "ratio"
    );
    println!("{}", "-".repeat(76));
    for name in bench_names(&base_report) {
        let Some(base) = median_ms(&base_report, &name) else {
            continue;
        };
        let Some(new) = median_ms(&new_report, &name) else {
            println!("{name:<40} {base:>12.3} {:>12} {:>8}", "missing", "-");
            failures.push(format!(
                "{name}: present in {base_path} but missing in {new_path}"
            ));
            continue;
        };
        let ratio = new / base.max(1e-9);
        let flag = if ratio > max_ratio {
            "  <-- REGRESSION"
        } else {
            ""
        };
        println!("{name:<40} {base:>12.3} {new:>12.3} {ratio:>8.3}{flag}");
        if ratio > max_ratio {
            failures.push(format!(
                "{name}: {new:.3} ms vs {base:.3} ms (ratio {ratio:.2} > {max_ratio})"
            ));
        }
    }
    for (name, required) in &requirements {
        let base = median_ms(&base_report, name);
        let new = median_ms(&new_report, name);
        match (base, new) {
            (Some(base), Some(new)) => {
                let ratio = new / base.max(1e-9);
                if ratio > *required {
                    failures.push(format!(
                        "required {name} <= {required}: actual ratio {ratio:.3} ({new:.3} vs {base:.3} ms)"
                    ));
                } else {
                    println!("require {name} <= {required}: ok (ratio {ratio:.3})");
                }
            }
            _ => failures.push(format!(
                "required bench {name} missing from one of the files"
            )),
        }
    }
    for (name, ratio, other) in &within_requirements {
        let a = median_ms(&new_report, name);
        let b = median_ms(&new_report, other);
        match (a, b) {
            (Some(a), Some(b)) => {
                let limit = ratio * b;
                if a > limit {
                    failures.push(format!(
                        "required {name} <= {ratio}*{other} within {new_path}: actual {a:.3} ms vs limit {limit:.3} ms ({other} = {b:.3} ms)"
                    ));
                } else {
                    println!(
                        "require {name} <= {ratio}*{other}: ok ({a:.3} ms vs limit {limit:.3} ms)"
                    );
                }
            }
            _ => failures.push(format!(
                "required benches {name}/{other} missing from {new_path}"
            )),
        }
    }
    if !failures.is_empty() {
        eprintln!("\nbench_compare FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!("\nbench_compare OK ({new_path} vs {base_path})");
}
