//! Synthetic violation fixture for `soap-lint --self-check`: every rule must
//! fire on this file, proving the scanner actually detects what it forbids.
//! This directory is excluded from the workspace walk.

use std::collections::HashMap;
use std::time::Instant;

pub fn float_sort(xs: &mut Vec<f64>) {
    // partial-cmp: raw float comparison instead of soap_symbolic::nan_last.
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

pub fn timing() -> std::time::Duration {
    // instant-now: wall-clock read outside deadline.rs/perf*.
    let t = Instant::now();
    t.elapsed()
}

pub fn panicky(input: Option<u32>) -> u32 {
    // unwrap-expect: library-code panic without a justification marker.
    input.unwrap()
}

pub fn serialize_counts(pairs: &[(String, u64)]) -> String {
    let mut counts: HashMap<&str, u64> = HashMap::new();
    for (k, v) in pairs {
        *counts.entry(k).or_default() += v;
    }
    let mut out = String::new();
    // hashmap-iter: arbitrary hash order feeding serialized output.
    for (k, v) in counts.iter() {
        out.push_str(&serde_json::to_string(&(k, v)).unwrap_or_default());
    }
    out
}

pub fn knobs() -> (bool, bool) {
    // env-docs: the UNDOCUMENTED one must be reported, the DOCUMENTED one not
    // (the self-check supplies a synthetic docs set naming only the latter).
    let documented = std::env::var("SOAP_SELF_CHECK_DOCUMENTED").is_ok();
    let undocumented = std::env::var("SOAP_SELF_CHECK_UNDOCUMENTED").is_ok();
    (documented, undocumented)
}

// lint:allow(no-such-rule): a marker naming an unknown rule is itself flagged
pub fn marked() {}
