//! Warm-store golden verification: a batch run answered entirely from the
//! disk-persisted canonical-solution store must reproduce the *committed*
//! golden registry bounds — not merely match its own cold run.  This closes
//! the loop the per-crate round-trip test cannot: if the store codec and a
//! fresh solve ever drifted in the same way (e.g. a lossy float path on both
//! sides), cold-vs-warm comparison would still pass, but the committed golden
//! file would not.

use soap_bench::{reference_bindings, suite_program};
use soap_sdg::{analyze_suite_with, SolveCache};
use std::fmt::Write as _;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/registry_bounds.txt"
);

#[test]
fn warm_store_run_reproduces_the_committed_golden_bounds() {
    let dir = std::env::temp_dir().join(format!("soap-warm-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let entries = soap_kernels::registry();
    let jobs: Vec<_> = entries.iter().map(suite_program).collect();

    // Cold process: solve everything, persist.
    {
        let cache = SolveCache::with_store(&dir).expect("store opens");
        let cold = analyze_suite_with(&jobs, &cache);
        assert_eq!(cold.summary.failures, 0);
        cache.flush_store().expect("flush succeeds");
    }

    // Warm process: hydrate, re-analyze with zero solves.  The whole suite
    // is answered from persisted finished reports — the front half
    // (enumerate / merge / instantiate) never runs, so the warm path is the
    // report codec end to end.
    let cache = SolveCache::with_store(&dir).expect("store reopens");
    let warm = analyze_suite_with(&jobs, &cache);
    assert_eq!(warm.summary.cache.misses, 0, "{:?}", warm.summary.cache);
    assert_eq!(warm.summary.cache.uncacheable, 0);
    assert_eq!(
        warm.summary.cache.report_hits,
        jobs.len() as u64,
        "{:?}",
        warm.summary.cache
    );
    assert_eq!(warm.summary.subgraphs_enumerated, 0);

    // Render the warm analyses in the exact format of the committed golden
    // file (see tests/registry_golden_bounds.rs, including its two header
    // comment lines) and require full-text equality — line containment alone
    // would let a codec bug that swaps two kernels' hydrated solutions pass,
    // since every swapped line still exists under the *other* kernel.
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden file exists");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Golden per-kernel bounds at the Table-2 reference bindings \
         (size params = 256, S = 1024; see soap_bench::reference_bindings)."
    );
    let _ = writeln!(
        out,
        "# Regenerate with: SOAP_UPDATE_GOLDEN=1 cargo test --test registry_golden_bounds"
    );
    for (entry, report) in entries.iter().zip(&warm.reports) {
        let analysis = report.outcome.as_ref().expect("analysis succeeded");
        let bindings = reference_bindings(entry);
        let q = analysis.bound.eval(&bindings).unwrap_or(f64::NAN);
        let _ = writeln!(out, "kernel {}", entry.name);
        let _ = writeln!(out, "  bound {}", analysis.bound);
        let _ = writeln!(out, "  Q(ref) {q:.8e}");
        for a in &analysis.per_array {
            let _ = writeln!(out, "  array {} sigma={} rho={}", a.array, a.sigma, a.rho);
        }
    }
    if golden != out {
        let first_diff = golden
            .lines()
            .zip(out.lines())
            .enumerate()
            .find(|(_, (g, w))| g != w)
            .map(|(i, (g, w))| format!("line {}:\n  golden: {g}\n  warm:   {w}", i + 1))
            .unwrap_or_else(|| "line counts differ".to_string());
        panic!(
            "warm-store registry snapshot differs from {GOLDEN_PATH} — a store \
             round trip changed a bound the cold path still gets right; first diff at {first_diff}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
