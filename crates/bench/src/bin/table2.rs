//! Regenerate the paper's Table 2: per-kernel I/O lower bounds, the
//! comparison against the paper's reported bounds, and the improvement factor
//! over the previous state of the art.
//!
//! ```text
//! cargo run --release -p soap-bench --bin table2 [-- --group polybench|nn|various] [--json out.json] [--suite-json suite.json]
//! ```
//!
//! The rows are produced by the cross-program batch engine (one shared solve
//! cache across the whole table), so the suite-level cache accounting printed
//! at the end — and written by `--suite-json` — shows how many structures
//! were deduplicated *across* kernels.

#![forbid(unsafe_code)]

use soap_bench::{
    render_suite_summary, render_table, suite_summary_record, table2_suite, Table2Row,
};
use soap_kernels::KernelGroup;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut group = None;
    let mut json_path: Option<String> = None;
    let mut suite_json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--suite-json" => {
                i += 1;
                suite_json_path = args.get(i).cloned();
            }
            "--group" => {
                i += 1;
                group = match args.get(i).map(|s| s.as_str()) {
                    Some("polybench") => Some(KernelGroup::Polybench),
                    Some("nn") => Some(KernelGroup::NeuralNetworks),
                    Some("various") => Some(KernelGroup::Various),
                    other => {
                        eprintln!("unknown group {other:?} (expected polybench|nn|various)");
                        std::process::exit(2);
                    }
                };
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).cloned();
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let (rows, suite): (Vec<Table2Row>, _) = table2_suite(group);
    println!("{}", render_table(&rows));
    println!(
        "reference sizes: every size parameter = {}, S = {} words",
        soap_bench::REFERENCE_SIZE,
        soap_bench::REFERENCE_S
    );
    println!("{}", render_suite_summary(&suite));
    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&rows).expect("rows serialize to JSON");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
    if let Some(path) = suite_json_path {
        let json = serde_json::to_string_pretty(&suite_summary_record(&suite))
            .expect("suite summary serializes");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}
