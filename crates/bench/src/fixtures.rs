//! Shared synthetic workloads used by the benches and the `perf` binary.
//!
//! `soap-sdg`'s own tests (`perf_smoke.rs`, `solver_differential.rs`) carry a
//! private copy of `chain_of_matmuls` in `crates/sdg/tests/common/fixtures.rs`
//! — depending on this crate from there would be a dependency cycle — so
//! changes here must be mirrored there.  The root-level
//! `tests/fixture_sync.rs` test compares the built `Program`s of both copies
//! and fails if they drift.

use soap_core::AccessModel;
use soap_ir::{Program, ProgramBuilder};
use soap_symbolic::Expr;

/// A chain of `k` matrix-multiplication statements
/// (`T_{s+1}[i,j] += T_s[i,k]·W_{s+1}[k,j]`), the paper's SDG scaling
/// workload.
pub fn chain_of_matmuls(k: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("chain{k}"));
    for s in 0..k {
        let src = if s == 0 {
            "A0".to_string()
        } else {
            format!("T{s}")
        };
        let dst = format!("T{}", s + 1);
        let w = format!("W{}", s + 1);
        b = b.statement(move |st| {
            st.loops(&[("i", "0", "N"), ("j", "0", "N"), ("k", "0", "N")])
                .update(&dst, "i,j")
                .read(&src, "i,k")
                .read(&w, "k,j")
        });
    }
    // lint:allow(unwrap-expect): builder inputs are static fixture tables; failure is an authoring bug caught by tier-1 tests
    b.build().expect("chain builds")
}

/// `k` independent writers of a shared read-only input — a dense SDG star.
pub fn dense_star(k: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("dense{k}"));
    for s in 0..k {
        let dst = format!("D{s}");
        b = b.statement(move |st| st.loops(&[("i", "0", "N")]).write(&dst, "i").read("A", "i"));
    }
    // lint:allow(unwrap-expect): builder inputs are static fixture tables; failure is an authoring bug caught by tier-1 tests
    b.build().expect("dense builds")
}

/// A skewed SDG: a dense `hub`-statement cluster sharing one read-only input
/// (every pair of hub arrays is adjacent, so one seed component generates
/// almost all connected subsets) plus `tail` disjoint two-statement chains
/// contributing almost none.  The imbalance workload for the self-scheduled
/// enumeration: a static one-chunk-per-core split serializes behind the hub.
pub fn skewed_hub(hub: usize, tail: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("skew{hub}x{tail}"));
    for s in 0..hub {
        let dst = format!("H{s}");
        b = b.statement(move |st| {
            st.loops(&[("i", "0", "N")])
                .write(&dst, "i")
                .read("HUB", "i")
        });
    }
    for s in 0..tail {
        let mid = format!("M{s}");
        let src = format!("X{s}");
        b = b.statement(move |st| {
            st.loops(&[("i", "0", "N")])
                .write(&mid, "i")
                .read(&src, "i")
        });
        let mid_in = format!("M{s}");
        let dst = format!("E{s}");
        b = b.statement(move |st| {
            st.loops(&[("i", "0", "N")])
                .write(&dst, "i")
                .read(&mid_in, "i")
        });
    }
    // lint:allow(unwrap-expect): builder inputs are static fixture tables; failure is an authoring bug caught by tier-1 tests
    b.build().expect("skewed hub builds")
}

/// The matrix-multiplication [`AccessModel`] over the given tile-variable
/// names: χ = D₀·D₁·D₂, g = D₀·D₂ + D₂·D₁ + D₀·D₁.
pub fn mmm_access_model(name: &str, vars: [&str; 3]) -> AccessModel {
    let tile_var = soap_core::access_size::tile_var;
    let dv = |v: &str| Expr::sym(tile_var(v));
    AccessModel {
        name: name.into(),
        tile_variables: vars.iter().map(|v| tile_var(v)).collect(),
        objective: dv(vars[0]).mul(dv(vars[1])).mul(dv(vars[2])),
        dominator: dv(vars[0])
            .mul(dv(vars[2]))
            .add(dv(vars[2]).mul(dv(vars[1])))
            .add(dv(vars[0]).mul(dv(vars[1]))),
        access_index_sets: vec![],
    }
}
