//! End-to-end tests of the daemon over real TCP: coalescing, degraded-mode
//! timeouts, protocol errors, shutdown — everything a client can observe.

use soap_serve::{RunningServer, ServeConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

fn start(config: ServeConfig) -> RunningServer {
    RunningServer::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..config
    })
    .expect("server starts")
}

fn get_json(client: &mut httpd::Client, path: &str) -> serde_json::Value {
    let resp = client.get(path).expect("request");
    assert_eq!(resp.status, 200, "{path}: {:?}", resp.body_utf8());
    serde_json::from_str(resp.body_utf8().expect("utf8")).expect("json")
}

fn stat(v: &serde_json::Value, key: &str) -> i128 {
    v.get(key)
        .and_then(|x| x.as_i128())
        .unwrap_or_else(|| panic!("stat {key} missing in {v:?}"))
}

/// A long program: a chain of K matmul-shaped updates, each feeding the
/// next — enough SDG subgraphs that a 1 ms deadline always degrades it.
fn long_chain_source(k: usize) -> String {
    let mut src = String::new();
    for s in 0..k {
        let (a, b) = (format!("T{s}"), format!("T{}", s + 1));
        src.push_str(&format!(
            "for i{s} in range(0, N):\n    for j{s} in range(0, N):\n        for k{s} in range(0, N):\n            {b}[i{s}][j{s}] += {a}[i{s}][k{s}] * W{s}[k{s}][j{s}]\n"
        ));
    }
    src
}

#[test]
fn health_kernels_and_analyze_over_tcp() {
    let server = start(ServeConfig::default());
    let mut client = httpd::Client::connect(server.addr()).expect("connect");

    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);

    let kernels = get_json(&mut client, "/kernels");
    let names = kernels.get("kernels").and_then(|k| k.as_array()).unwrap();
    assert!(names.iter().any(|n| n.as_str() == Some("gemm")));

    let resp = client.get("/analyze?kernel=atax").expect("analyze");
    assert_eq!(resp.status, 200, "{:?}", resp.body_utf8());
    let body = resp.body_utf8().unwrap();
    assert!(body.starts_with("{\"program\":\"atax\","), "{body}");
    assert!(body.contains("\"ok\":true"));

    assert_eq!(server.stop().expect("clean stop"), 0);
}

#[test]
fn concurrent_identical_requests_coalesce_to_one_analysis() {
    let server = start(ServeConfig::default());
    let addr = server.addr();
    // A fresh source no other test submits, so nothing is pre-cached.
    let source = Arc::new(
        "for i in range(0, N):\n    for j in range(0, N):\n        for k in range(0, N):\n            Zq[i][j] += Xq[i][k] * Yq[k][j]\n"
            .to_string(),
    );
    const CLIENTS: usize = 8;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let ok = Arc::new(AtomicUsize::new(0));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let (barrier, ok, source) =
                (Arc::clone(&barrier), Arc::clone(&ok), Arc::clone(&source));
            std::thread::spawn(move || {
                let mut client = httpd::Client::connect(addr).expect("connect");
                barrier.wait();
                let resp = client
                    .post(
                        &format!("/analyze?lang=python&name=dup{i}"),
                        "text/plain",
                        source.as_bytes(),
                    )
                    .expect("analyze");
                assert_eq!(resp.status, 200, "{:?}", resp.body_utf8());
                let body = resp.body_utf8().unwrap();
                assert!(
                    body.starts_with(&format!("{{\"program\":\"dup{i}\",")),
                    "{body}"
                );
                ok.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    assert_eq!(ok.load(Ordering::Relaxed), CLIENTS);

    let mut client = httpd::Client::connect(addr).expect("connect");
    let stats = get_json(&mut client, "/stats");
    assert_eq!(stat(&stats, "analyses"), 1, "exactly one analysis ran");
    assert_eq!(
        stat(&stats, "coalesced") + stat(&stats, "response_cache_hits"),
        (CLIENTS - 1) as i128,
        "every duplicate was deduplicated: {stats:?}"
    );
    assert_eq!(stat(&stats, "responses_5xx"), 0);
    server.stop().expect("clean stop");
}

#[test]
fn per_request_timeout_degrades_with_http_200_and_is_not_memoized() {
    let server = start(ServeConfig::default());
    let mut client = httpd::Client::connect(server.addr()).expect("connect");
    let source = long_chain_source(40);

    let resp = client
        .post(
            "/analyze?lang=python&name=chain&timeout_ms=1",
            "text/plain",
            source.as_bytes(),
        )
        .expect("analyze");
    assert_eq!(
        resp.status,
        200,
        "degraded is success: {:?}",
        resp.body_utf8()
    );
    let body = resp.body_utf8().unwrap();
    assert!(body.contains("\"degraded\":true"), "{body}");
    assert!(body.contains("\"ok\":true"), "{body}");

    // Degraded responses are budget-shaped, not structural: a repeat request
    // must re-analyze, not replay the first request's truncation.
    let resp2 = client
        .post(
            "/analyze?lang=python&name=chain&timeout_ms=1",
            "text/plain",
            source.as_bytes(),
        )
        .expect("analyze");
    assert_eq!(resp2.status, 200);
    let stats = get_json(&mut client, "/stats");
    assert_eq!(stat(&stats, "analyses"), 2, "degraded result not memoized");
    assert_eq!(stat(&stats, "degraded"), 2);
    assert_eq!(stat(&stats, "responses_5xx"), 0);
    server.stop().expect("clean stop");
}

#[test]
fn malformed_requests_are_4xx_never_5xx() {
    let server = start(ServeConfig::default());
    let mut client = httpd::Client::connect(server.addr()).expect("connect");

    let cases: Vec<(u16, httpd::Response)> = vec![
        (
            404,
            client.get("/analyze?kernel=definitely-not-real").unwrap(),
        ),
        (400, client.get("/analyze").unwrap()),
        (
            400,
            client
                .post("/analyze?lang=python", "text/plain", b"")
                .unwrap(),
        ),
        (
            400,
            client
                .post("/analyze?lang=python", "text/plain", &[0xff, 0xfe, 0x01])
                .unwrap(),
        ),
        (
            400,
            client
                .post("/analyze?lang=python", "text/plain", b"while True: pass")
                .unwrap(),
        ),
        (
            400,
            client
                .post("/analyze?lang=cobol", "text/plain", b"x = 1")
                .unwrap(),
        ),
        (405, client.post("/kernels", "text/plain", b"").unwrap()),
        (404, client.get("/no-such-route").unwrap()),
    ];
    for (want, resp) in cases {
        assert_eq!(resp.status, want, "{:?}", resp.body_utf8());
    }

    let stats = get_json(&mut client, "/stats");
    assert_eq!(stat(&stats, "responses_5xx"), 0, "{stats:?}");
    assert_eq!(stat(&stats, "responses_4xx"), 8);
    server.stop().expect("clean stop");
}

#[test]
fn shutdown_endpoint_unblocks_wait() {
    let server = start(ServeConfig::default());
    let addr = server.addr();
    let trigger = std::thread::spawn(move || {
        let mut client = httpd::Client::connect(addr).expect("connect");
        let resp = client.request("POST", "/shutdown", None).expect("shutdown");
        assert_eq!(resp.status, 200);
    });
    server.wait_for_shutdown();
    trigger.join().expect("trigger thread");
    server.stop().expect("clean stop");
}

#[test]
fn store_directory_is_shared_warm_state_across_restarts() {
    let dir = std::env::temp_dir().join(format!("soap-serve-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || ServeConfig {
        cache_dir: Some(dir.display().to_string()),
        ..ServeConfig::default()
    };

    // Cold replica: analyze, then flush at shutdown.
    let server = start(config());
    let mut client = httpd::Client::connect(server.addr()).expect("connect");
    let cold = client.get("/analyze?kernel=bicg").expect("analyze");
    assert_eq!(cold.status, 200);
    let cold_body = cold.body_utf8().unwrap().to_string();
    assert!(
        server.stop().expect("flush on stop") > 0,
        "solutions persisted"
    );

    // Warm replica sharing the same store: byte-identical answer served
    // straight from the persisted finished report — zero solves, zero
    // front-half work.
    let server = start(config());
    let mut client = httpd::Client::connect(server.addr()).expect("connect");
    let warm = client.get("/analyze?kernel=bicg").expect("analyze");
    assert_eq!(warm.body_utf8().unwrap(), cold_body);
    let stats = get_json(&mut client, "/stats");
    let cache = stats.get("solve_cache").expect("solve_cache");
    assert!(
        cache
            .get("report_hits")
            .and_then(|x| x.as_i128())
            .unwrap_or(0)
            > 0,
        "warm replica answered from a persisted report: {stats:?}"
    );
    assert_eq!(cache.get("misses").and_then(|x| x.as_i128()), Some(0));
    assert!(
        stats
            .get("store")
            .and_then(|s| s.get("hydrated_reports"))
            .and_then(|x| x.as_i128())
            .unwrap_or(0)
            > 0,
        "report records hydrated at startup: {stats:?}"
    );
    server.stop().expect("clean stop");
    let _ = std::fs::remove_dir_all(&dir);
}
