//! The combinatorial core in isolation: connected-subgraph enumeration over
//! the SDG, bitset fast path vs. the retained naive reference implementation
//! (sorted `Vec<String>` sets deduplicated through a `BTreeSet`), on the
//! topologies the analysis actually meets: chains, meshes and a dense
//! all-to-all worst case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soap_bench::fixtures::skewed_hub;
use soap_ir::{Program, ProgramBuilder};
use soap_sdg::subgraphs::{enumerate_connected_subgraphs, enumerate_connected_subgraphs_naive};
use soap_sdg::Sdg;

/// A chain of `k` matmul-like statements (the `sdg_scaling` topology).
fn chain(k: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("chain{k}"));
    for s in 0..k {
        let src = if s == 0 {
            "A0".to_string()
        } else {
            format!("T{s}")
        };
        let dst = format!("T{}", s + 1);
        b = b.statement(move |st| {
            st.loops(&[("i", "0", "N")])
                .write(&dst, "i")
                .read(&src, "i")
        });
    }
    b.build().expect("chain builds")
}

/// `k` statements all reading one shared input array: every pair of computed
/// arrays is adjacent (through the shared input), the enumeration worst case.
fn dense(k: usize) -> Program {
    let mut b = ProgramBuilder::new(format!("dense{k}"));
    for s in 0..k {
        let dst = format!("D{s}");
        b = b.statement(move |st| st.loops(&[("i", "0", "N")]).write(&dst, "i").read("A", "i"));
    }
    b.build().expect("dense builds")
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("subgraph_enumeration");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (label, program, max_size) in [
        ("chain35", chain(35), 4usize),
        ("dense16", dense(16), 4),
        ("dense20", dense(20), 3),
        // One dominant seed component (a 14-array dense hub) among 40 cheap
        // chain statements: the high-skew shape that separates self-scheduled
        // workers from a static per-seed partition.
        ("skew14x20", skewed_hub(14, 20), 3),
    ] {
        let sdg = Sdg::from_program(&program);
        group.bench_with_input(BenchmarkId::new("bitset", label), &sdg, |b, sdg| {
            b.iter(|| enumerate_connected_subgraphs(sdg, max_size, 1_000_000))
        });
        group.bench_with_input(BenchmarkId::new("naive", label), &sdg, |b, sdg| {
            b.iter(|| enumerate_connected_subgraphs_naive(sdg, max_size, 1_000_000))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
