//! Schedule generators: turn a CDAG into a valid pebbling and count its I/O.
//!
//! Two schedules are provided:
//!
//! * [`simulate_program_order`] — compute vertices in program order;
//! * [`simulate_tiled`] — compute vertices reordered by a loop tiling (the
//!   tile sizes typically come from the analysis' optimal `|D_t|(X₀)`), which
//!   is the schedule the paper's constructive bound suggests.
//!
//! Both use the same executor: operands are loaded on demand, red pebbles are
//! evicted with Belady's rule (furthest next use), and computed values still
//! needed later (or program outputs) are written back before eviction.  The
//! executor produces a *valid* pebbling (verified through [`crate::game`]), so
//! its I/O is an upper bound that can be compared against the analytic lower
//! bound.

use crate::cdag::{Cdag, VertexId, VertexKind};
use crate::game::{Move, PebbleGame, PebblingError};
use soap_bitset::BitSet;
use std::collections::{BTreeMap, BinaryHeap};

/// Statistics of one simulated schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Number of load moves.
    pub loads: usize,
    /// Number of store moves.
    pub stores: usize,
    /// Number of compute moves.
    pub computes: usize,
}

impl ScheduleStats {
    /// Total I/O (loads + stores).
    pub fn io(&self) -> usize {
        self.loads + self.stores
    }
}

/// Simulate the schedule that computes vertices in the given order.
///
/// Returns the statistics and the validated move sequence's I/O (the two are
/// consistent by construction; the game replay is a safety net).
pub fn simulate_order(
    cdag: &Cdag,
    order: &[VertexId],
    s: usize,
) -> Result<ScheduleStats, PebblingError> {
    assert!(
        s >= 3,
        "a red-pebble budget below 3 cannot evaluate binary operators"
    );
    // Position of each vertex in the compute order, for Belady eviction and
    // "needed later" decisions.
    let mut uses: Vec<Vec<usize>> = vec![Vec::new(); cdag.len()];
    for (t, &v) in order.iter().enumerate() {
        for &p in cdag.parents(v) {
            uses[p].push(t);
        }
    }
    let mut outputs = BitSet::new(cdag.len());
    for &v in &cdag.outputs {
        outputs.insert(v);
    }

    let mut game = PebbleGame::new(cdag, s);
    let mut moves: Vec<Move> = Vec::new();
    let mut red = BitSet::new(cdag.len());
    let mut stored = BitSet::new(cdag.len());
    let mut computes = 0usize;

    for (t, &v) in order.iter().enumerate() {
        // Ensure all parents are red.
        for &p in cdag.parents(v) {
            if red.contains(p) {
                continue;
            }
            make_room(
                cdag,
                &mut game,
                &mut moves,
                &mut red,
                &mut stored,
                &outputs,
                &uses,
                t,
                s,
            )?;
            // A parent is either an input / previously stored value (load) or a
            // computed value that was evicted without a store — in the latter
            // case it must have been stored (the executor always writes back
            // values with remaining uses), so a load is always legal here.
            game.apply(Move::Load(p))?;
            moves.push(Move::Load(p));
            red.insert(p);
        }
        make_room(
            cdag,
            &mut game,
            &mut moves,
            &mut red,
            &mut stored,
            &outputs,
            &uses,
            t,
            s,
        )?;
        game.apply(Move::Compute(v))?;
        moves.push(Move::Compute(v));
        computes += 1;
        red.insert(v);
    }
    // Store any outputs still only in fast memory.
    for &v in &cdag.outputs {
        if !stored.contains(v) && red.contains(v) {
            game.apply(Move::Store(v))?;
            moves.push(Move::Store(v));
            stored.insert(v);
        }
    }
    let io = {
        // Re-validate the whole sequence from scratch as a safety net.
        let mut replay = PebbleGame::new(cdag, s);
        replay.run(&moves)?
    };
    debug_assert_eq!(io, game.loads() + game.stores());
    Ok(ScheduleStats {
        loads: game.loads(),
        stores: game.stores(),
        computes,
    })
}

/// Evict red pebbles (storing values that are outputs or still needed) until a
/// free slot is available.
#[allow(clippy::too_many_arguments)]
fn make_room(
    cdag: &Cdag,
    game: &mut PebbleGame<'_>,
    moves: &mut Vec<Move>,
    red: &mut BitSet,
    stored: &mut BitSet,
    outputs: &BitSet,
    uses: &[Vec<usize>],
    now: usize,
    s: usize,
) -> Result<(), PebblingError> {
    // Next compute step (≥ now) at which a vertex is used as an operand;
    // usize::MAX means "never again".
    let next_use = |v: VertexId| -> usize {
        uses[v]
            .iter()
            .find(|&&t| t >= now)
            .copied()
            .unwrap_or(usize::MAX)
    };
    while red.len() >= s {
        // Belady: evict the red vertex with the furthest next use.
        let mut heap: BinaryHeap<(usize, VertexId)> = BinaryHeap::new();
        for v in red.iter() {
            heap.push((next_use(v), v));
        }
        // lint:allow(unwrap-expect): the loop guard ensures the red set is non-empty
        let (next, victim) = heap.pop().expect("red set is non-empty");
        let needed_later = next != usize::MAX;
        let is_output = outputs.contains(victim);
        let is_computed = matches!(cdag.kinds[victim], VertexKind::Compute { .. });
        if (needed_later || is_output)
            && is_computed
            && !stored.contains(victim)
            && !game.is_blue(victim)
        {
            game.apply(Move::Store(victim))?;
            moves.push(Move::Store(victim));
            stored.insert(victim);
        }
        game.apply(Move::DiscardRed(victim))?;
        moves.push(Move::DiscardRed(victim));
        red.remove(victim);
    }
    Ok(())
}

/// Program-order schedule: compute vertices in CDAG creation order.
pub fn simulate_program_order(cdag: &Cdag, s: usize) -> Result<ScheduleStats, PebblingError> {
    let order = cdag.compute_vertices();
    simulate_order(cdag, &order, s)
}

/// Tiled schedule: compute vertices grouped by the tile block of their
/// iteration vector (per-statement tile sizes given by `tiles`, one entry per
/// loop variable in loop order; missing entries default to the full extent).
pub fn simulate_tiled(
    cdag: &Cdag,
    tiles: &BTreeMap<usize, Vec<i64>>,
    s: usize,
) -> Result<ScheduleStats, PebblingError> {
    let mut order = cdag.compute_vertices();
    order.sort_by_key(|&v| match &cdag.kinds[v] {
        VertexKind::Compute {
            statement,
            iteration,
            ..
        } => {
            let tile = tiles.get(statement);
            let block: Vec<i64> = iteration
                .iter()
                .enumerate()
                .map(|(d, &x)| match tile.and_then(|t| t.get(d)) {
                    Some(&ts) if ts > 0 => x / ts,
                    _ => 0,
                })
                .collect();
            (*statement, block, iteration.clone())
        }
        VertexKind::Input { .. } => unreachable!("compute_vertices returns compute vertices"),
    });
    simulate_order(cdag, &order, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soap_ir::ProgramBuilder;
    use std::collections::BTreeMap;

    fn mmm_cdag(n: i64) -> Cdag {
        let p = ProgramBuilder::new("gemm")
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "N"), ("k", "0", "N")])
                    .update("C", "i,j")
                    .read("A", "i,k")
                    .read("B", "k,j")
            })
            .build()
            .unwrap();
        let mut params = BTreeMap::new();
        params.insert("N".to_string(), n);
        Cdag::from_program(&p, &params)
    }

    #[test]
    fn program_order_schedule_is_valid_and_counts_io() {
        let g = mmm_cdag(6);
        let stats = simulate_program_order(&g, 16).unwrap();
        assert_eq!(stats.computes, 216);
        // Compulsory traffic: at least all of A and B loaded once and all of C
        // stored once.
        assert!(stats.loads >= 72, "loads {}", stats.loads);
        assert!(stats.stores >= 36, "stores {}", stats.stores);
    }

    #[test]
    fn tiled_schedule_beats_program_order_with_small_cache() {
        let g = mmm_cdag(8);
        let s = 24;
        let naive = simulate_program_order(&g, s).unwrap();
        // Tile i,j,k by 2x2x8 — roughly the sqrt(S/3)-shaped tile.
        let mut tiles = BTreeMap::new();
        tiles.insert(0usize, vec![2, 2, 8]);
        let tiled = simulate_tiled(&g, &tiles, s).unwrap();
        assert!(
            tiled.io() <= naive.io(),
            "tiled {} should not exceed naive {}",
            tiled.io(),
            naive.io()
        );
    }

    #[test]
    fn larger_cache_never_hurts() {
        let g = mmm_cdag(6);
        let small = simulate_program_order(&g, 8).unwrap();
        let large = simulate_program_order(&g, 64).unwrap();
        assert!(large.io() <= small.io());
    }

    #[test]
    fn io_is_at_least_compulsory_traffic() {
        let g = mmm_cdag(5);
        let stats = simulate_program_order(&g, 12).unwrap();
        // 25 A + 25 B + 25 C_init loads minimum, 25 C stores minimum.
        assert!(stats.io() >= 50 + 25);
    }
}
