//! Registry-wide golden-bound regression net.
//!
//! Analyzes **every** kernel in `soap_kernels::registry()` with the Table-2
//! options and snapshots, per kernel: the symbolic bound, its numeric value
//! at the fixed reference bindings, and each array's σ and ρ.  The snapshot
//! is compared line-by-line against the committed golden file, so any future
//! refactor that bends a Table-2 row — a coefficient drifting, a σ snapping
//! differently, an array dropping out of the bound — fails here with a
//! readable diff instead of slipping through the tolerance-based checks.
//!
//! **Update path** (after an *intentional* change to bound values):
//!
//! ```text
//! SOAP_UPDATE_GOLDEN=1 cargo test --test registry_golden_bounds
//! git diff tests/golden/registry_bounds.txt   # review every changed line!
//! ```

use soap_bench::{analyze_kernel, reference_bindings};
use std::fmt::Write as _;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/registry_bounds.txt"
);

/// Render the current registry snapshot.  Numeric values are formatted to 9
/// significant digits: far tighter than any honest tolerance, loose enough
/// not to flake on libm differences across hosts.
fn snapshot() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Golden per-kernel bounds at the Table-2 reference bindings \
         (size params = 256, S = 1024; see soap_bench::reference_bindings)."
    );
    let _ = writeln!(
        out,
        "# Regenerate with: SOAP_UPDATE_GOLDEN=1 cargo test --test registry_golden_bounds"
    );
    for entry in soap_kernels::registry() {
        let analysis = analyze_kernel(&entry);
        let bindings = reference_bindings(&entry);
        let q = analysis.bound.eval(&bindings).unwrap_or(f64::NAN);
        let _ = writeln!(out, "kernel {}", entry.name);
        let _ = writeln!(out, "  bound {}", analysis.bound);
        let _ = writeln!(out, "  Q(ref) {q:.8e}");
        for a in &analysis.per_array {
            let _ = writeln!(out, "  array {} sigma={} rho={}", a.array, a.sigma, a.rho);
        }
    }
    out
}

#[test]
fn registry_bounds_match_the_committed_golden_file() {
    let current = snapshot();
    if std::env::var("SOAP_UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &current).expect("write golden file");
        eprintln!("updated {GOLDEN_PATH} — review the diff before committing");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "cannot read {GOLDEN_PATH}: {e}\n\
             generate it with: SOAP_UPDATE_GOLDEN=1 cargo test --test registry_golden_bounds"
        )
    });
    if golden == current {
        return;
    }
    // Readable diff: every differing line with its line number, plus
    // insertions/deletions at the tail.
    let mut diff = String::new();
    let mut differing = 0usize;
    let g: Vec<&str> = golden.lines().collect();
    let c: Vec<&str> = current.lines().collect();
    for i in 0..g.len().max(c.len()) {
        let old = g.get(i).copied();
        let new = c.get(i).copied();
        if old != new {
            differing += 1;
            if differing <= 40 {
                let _ = writeln!(diff, "line {:>4}: - {}", i + 1, old.unwrap_or("<missing>"));
                let _ = writeln!(diff, "           + {}", new.unwrap_or("<missing>"));
            }
        }
    }
    if differing > 40 {
        let _ = writeln!(diff, "… and {} more differing lines", differing - 40);
    }
    panic!(
        "registry bounds drifted from {GOLDEN_PATH} ({differing} differing lines):\n{diff}\n\
         If the change is intentional, regenerate with\n\
         SOAP_UPDATE_GOLDEN=1 cargo test --test registry_golden_bounds\n\
         and review the golden diff line by line."
    );
}

#[test]
fn golden_file_covers_every_registry_kernel() {
    // 100% coverage guard: a kernel added to the registry without a golden
    // entry (or renamed) must fail loudly.
    if std::env::var("SOAP_UPDATE_GOLDEN").is_ok() {
        // The sibling test is rewriting the file right now.
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden file exists");
    for entry in soap_kernels::registry() {
        assert!(
            golden
                .lines()
                .any(|l| l == format!("kernel {}", entry.name)),
            "kernel {} missing from {GOLDEN_PATH} — regenerate the golden file",
            entry.name
        );
    }
}
