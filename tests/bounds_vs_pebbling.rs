//! Integration test: analytic lower bounds against explicit red-blue pebbling
//! simulations on small CDAGs (soundness smoke test across crates).

use soap::pebbling::{min_dominator_size, simulate_program_order, Cdag, VertexKind};
use soap::sdg::analyze_program;
use std::collections::BTreeMap;

fn concrete_params(kernel: &str, size: i64) -> BTreeMap<String, i64> {
    soap::kernels::by_name(kernel)
        .unwrap()
        .program
        .parameters()
        .into_iter()
        .map(|p| (p, size))
        .collect()
}

#[test]
fn simulated_schedules_never_beat_the_bound() {
    for (kernel, size, s) in [
        ("gemm", 10i64, 32usize),
        ("jacobi-1d", 24, 12),
        ("lu", 12, 32),
    ] {
        let entry = soap::kernels::by_name(kernel).unwrap();
        let analysis = analyze_program(&entry.program).unwrap();
        let params = concrete_params(kernel, size);
        let mut bindings: BTreeMap<String, f64> =
            params.iter().map(|(k, v)| (k.clone(), *v as f64)).collect();
        bindings.insert("S".to_string(), s as f64);
        let bound = analysis.bound.eval(&bindings).unwrap();

        let cdag = Cdag::from_program(&entry.program, &params);
        let stats = simulate_program_order(&cdag, s).unwrap();
        assert!(
            stats.io() as f64 >= bound,
            "{kernel}: simulated {} < bound {bound}",
            stats.io()
        );
    }
}

#[test]
fn lemma3_matches_exact_dominators_of_mmm_tiles() {
    let entry = soap::kernels::by_name("gemm").unwrap();
    let params = concrete_params("gemm", 6);
    let cdag = Cdag::from_program(&entry.program, &params);
    for tile in [2i64, 3] {
        let h: Vec<usize> = cdag
            .compute_vertices()
            .into_iter()
            .filter(|&v| match &cdag.kinds[v] {
                VertexKind::Compute { iteration, .. } => iteration.iter().all(|&x| x < tile),
                _ => false,
            })
            .collect();
        let exact = min_dominator_size(&cdag, &h);
        let lemma3 = (3 * tile * tile) as usize;
        assert_eq!(exact, lemma3, "tile {tile}");
    }
}

#[test]
fn larger_fast_memory_reduces_simulated_io_towards_the_bound() {
    let entry = soap::kernels::by_name("gemm").unwrap();
    let params = concrete_params("gemm", 12);
    let cdag = Cdag::from_program(&entry.program, &params);
    let io_small = simulate_program_order(&cdag, 16).unwrap().io();
    let io_large = simulate_program_order(&cdag, 256).unwrap().io();
    assert!(io_large < io_small);
    // With S ≥ the whole working set the traffic collapses to the compulsory
    // reads + writes: 3·N² loads (A, B, C_in) + N² stores.
    assert_eq!(io_large, 4 * 12 * 12);
}
