//! Integration test: the end-to-end pipeline reproduces the paper's Table-2
//! constants for a representative subset of kernels (exact-match rows) and
//! stays within the documented deviation envelope for the rest.

use soap::baselines::sota_bound;
use soap::kernels::{by_name, registry};
use soap::sdg::{analyze_program_with, SdgOptions};
use std::collections::BTreeMap;

fn bindings_for(kernel: &str) -> BTreeMap<String, f64> {
    let entry = by_name(kernel).expect("kernel exists");
    let mut b: BTreeMap<String, f64> = entry
        .program
        .parameters()
        .into_iter()
        .map(|p| (p, 128.0))
        .collect();
    b.insert("S".to_string(), 256.0);
    b
}

fn derived_over_paper(kernel: &str) -> f64 {
    let entry = by_name(kernel).expect("kernel exists");
    let opts = SdgOptions {
        assume_injective: entry.assume_injective,
        ..SdgOptions::default()
    };
    let analysis = analyze_program_with(&entry.program, &opts).expect("analysis succeeds");
    let b = bindings_for(kernel);
    let derived = analysis.bound.eval(&b).expect("derived bound evaluates");
    let paper = sota_bound(kernel)
        .expect("table entry exists")
        .paper_soap_bound
        .eval(&b)
        .expect("paper bound evaluates");
    derived / paper
}

#[test]
fn linear_algebra_rows_match_the_paper() {
    for kernel in [
        "gemm", "2mm", "3mm", "symm", "trmm", "lu", "ludcmp", "doitgen",
    ] {
        let ratio = derived_over_paper(kernel);
        assert!(
            (ratio - 1.0).abs() < 0.06,
            "{kernel}: derived/paper = {ratio}"
        );
    }
}

#[test]
fn cholesky_improves_on_prior_work_by_two() {
    let ratio = derived_over_paper("cholesky");
    assert!((ratio - 1.0).abs() < 0.06, "cholesky ratio {ratio}");
    let t = sota_bound("cholesky").unwrap();
    let b = bindings_for("cholesky");
    let improvement = t.paper_soap_bound.eval(&b).unwrap() / t.prior_bound().eval(&b).unwrap();
    assert!((improvement - 2.0).abs() < 1e-9);
}

#[test]
fn stencil_rows_match_the_paper() {
    for kernel in ["jacobi-1d", "jacobi-2d", "seidel-2d", "heat-3d"] {
        let ratio = derived_over_paper(kernel);
        assert!(
            (ratio - 1.0).abs() < 0.08,
            "{kernel}: derived/paper = {ratio}"
        );
    }
}

#[test]
fn bandwidth_bound_rows_match_the_paper() {
    for kernel in ["atax", "bicg", "mvt", "gemver", "gesummv", "trisolv"] {
        let ratio = derived_over_paper(kernel);
        assert!(
            (ratio - 1.0).abs() < 0.05,
            "{kernel}: derived/paper = {ratio}"
        );
    }
}

#[test]
fn all_rows_stay_within_the_documented_envelope() {
    // Kernels where this implementation is deliberately more conservative
    // (documented in EXPERIMENTS.md: adi, durbin, deriche, floyd-warshall,
    // syrk/syr2k, softmax, bert-encoder, lulesh) produce smaller — but still
    // valid — bounds; nothing may blow up above ~2.5× of the paper value.
    for entry in registry() {
        let ratio = derived_over_paper(entry.name);
        assert!(
            ratio > 5e-4 && ratio < 2.5,
            "{}: derived/paper ratio {ratio} outside the documented envelope",
            entry.name
        );
    }
}

#[test]
fn every_kernel_produces_a_finite_positive_bound() {
    for entry in registry() {
        let opts = SdgOptions {
            assume_injective: entry.assume_injective,
            ..SdgOptions::default()
        };
        let analysis = analyze_program_with(&entry.program, &opts)
            .unwrap_or_else(|e| panic!("{} failed: {e}", entry.name));
        let b = bindings_for(entry.name);
        let q = analysis.bound.eval(&b).unwrap_or(f64::NAN);
        assert!(q.is_finite() && q > 0.0, "{}: bound {q}", entry.name);
    }
}
