//! Exact minimum dominator-set size via a Dinic max-flow vertex cut.
//!
//! The dominator relevant for X-partitioning is the *external* one: the data
//! a subcomputation needs from outside itself — every path from a CDAG input
//! to a vertex of `H` must pass through a vertex of `Dom(H)` that is **not
//! computed inside `H`** (those are exactly the values that must be resident
//! or loaded when the subcomputation starts).  By Menger's theorem its minimum
//! size equals the minimum vertex cut separating the inputs from `H` when
//! vertices of `H` cannot be cut: every vertex outside `H` is split into an
//! `in → out` arc of capacity 1, vertices of `H` get infinite splitter
//! capacity, and the maximum flow from a super-source attached to the inputs
//! to a super-sink attached to `H` equals `|Dom_min(H)|`.
//!
//! This is used to validate Lemma 3 on concrete rectangular subcomputations:
//! the analytic access-set lower bound never exceeds the exact minimum
//! dominator size.

use crate::cdag::{Cdag, VertexId};
use std::collections::VecDeque;

/// A small Dinic max-flow solver over an adjacency list with residual edges.
struct Dinic {
    // to, capacity, index of the reverse edge
    edges: Vec<(usize, i64, usize)>,
    adj: Vec<Vec<usize>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    fn new(n: usize) -> Self {
        Dinic {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    fn add_edge(&mut self, from: usize, to: usize, cap: i64) {
        let e1 = self.edges.len();
        self.edges.push((to, cap, e1 + 1));
        self.adj[from].push(e1);
        let e2 = self.edges.len();
        self.edges.push((from, 0, e1));
        self.adj[to].push(e2);
    }

    fn bfs(&mut self, source: usize, sink: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut q = VecDeque::new();
        self.level[source] = 0;
        q.push_back(source);
        while let Some(v) = q.pop_front() {
            for &e in &self.adj[v] {
                let (to, cap, _) = self.edges[e];
                if cap > 0 && self.level[to] < 0 {
                    self.level[to] = self.level[v] + 1;
                    q.push_back(to);
                }
            }
        }
        self.level[sink] >= 0
    }

    fn dfs(&mut self, v: usize, sink: usize, flow: i64) -> i64 {
        if v == sink {
            return flow;
        }
        while self.iter[v] < self.adj[v].len() {
            let e = self.adj[v][self.iter[v]];
            let (to, cap, rev) = self.edges[e];
            if cap > 0 && self.level[v] < self.level[to] {
                let d = self.dfs(to, sink, flow.min(cap));
                if d > 0 {
                    self.edges[e].1 -= d;
                    self.edges[rev].1 += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0
    }

    fn max_flow(&mut self, source: usize, sink: usize) -> i64 {
        let mut flow = 0;
        while self.bfs(source, sink) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(source, sink, i64::MAX);
                if f == 0 {
                    break;
                }
                flow += f;
            }
        }
        flow
    }
}

/// Exact `|Dom_min(H)|` of the subcomputation `H` (a set of compute vertices)
/// within the CDAG.
pub fn min_dominator_size(cdag: &Cdag, h: &[VertexId]) -> usize {
    if h.is_empty() {
        return 0;
    }
    let n = cdag.len();
    // Node numbering: v_in = 2v, v_out = 2v+1, source = 2n, sink = 2n+1.
    let source = 2 * n;
    let sink = 2 * n + 1;
    let mut flow = Dinic::new(2 * n + 2);
    const INF: i64 = i64::MAX / 4;
    let mut in_h = soap_bitset::BitSet::new(n);
    for &v in h {
        in_h.insert(v);
    }
    for v in 0..n {
        // Vertices of H cannot serve as (external) dominators.
        let cap = if in_h.contains(v) { INF } else { 1 };
        flow.add_edge(2 * v, 2 * v + 1, cap);
    }
    for v in 0..n {
        for &c in cdag.children(v) {
            flow.add_edge(2 * v + 1, 2 * c, INF);
        }
    }
    for v in cdag.inputs() {
        flow.add_edge(source, 2 * v, INF);
    }
    for v in in_h.iter() {
        flow.add_edge(2 * v + 1, sink, INF);
    }
    flow.max_flow(source, sink) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdag::{Cdag, VertexKind};
    use soap_ir::ProgramBuilder;
    use std::collections::BTreeMap;

    fn mmm_cdag(n: i64) -> Cdag {
        let p = ProgramBuilder::new("gemm")
            .statement(|st| {
                st.loops(&[("i", "0", "N"), ("j", "0", "N"), ("k", "0", "N")])
                    .update("C", "i,j")
                    .read("A", "i,k")
                    .read("B", "k,j")
            })
            .build()
            .unwrap();
        let mut params = BTreeMap::new();
        params.insert("N".to_string(), n);
        Cdag::from_program(&p, &params)
    }

    #[test]
    fn single_vertex_dominator_is_its_parent_count() {
        let g = mmm_cdag(3);
        // The very first compute vertex (i=j=k=0) has 3 parents, all inputs;
        // since H's own vertices cannot act as external dominators, the
        // minimum cut is exactly those 3 parents.
        let first = g.compute_vertices()[0];
        assert_eq!(min_dominator_size(&g, &[first]), 3);
    }

    #[test]
    fn full_mmm_tile_dominator_matches_lemma3() {
        // H = all N³ multiply-accumulate vertices.  Every path starts at one
        // of the 3N² inputs (A, B, initial C) and each of them reaches H
        // directly, so the minimum external dominator is exactly 3N² — which
        // is also the Lemma-3 count 2N² (A, B) + N² (Corollary 1 for C).
        let n = 3usize;
        let g = mmm_cdag(n as i64);
        let h = g.compute_vertices();
        let dom = min_dominator_size(&g, &h);
        let lemma3 = 3 * n * n;
        assert_eq!(dom, lemma3);
    }

    #[test]
    fn rectangular_subcomputation_dominator_bounds() {
        // A 2×2×2 tile of a 4×4×4 MMM: Lemma 3 predicts
        // |A-tile| + |B-tile| + |C-prior-versions| = 4 + 4 + 4 = 12, and the
        // exact minimum external dominator equals it.
        let g = mmm_cdag(4);
        let tile: Vec<_> = g
            .compute_vertices()
            .into_iter()
            .filter(|&v| match &g.kinds[v] {
                VertexKind::Compute { iteration, .. } => iteration.iter().all(|&x| x < 2),
                _ => false,
            })
            .collect();
        assert_eq!(tile.len(), 8);
        let dom = min_dominator_size(&g, &tile);
        assert_eq!(dom, 12);
    }

    #[test]
    fn empty_subcomputation_has_empty_dominator() {
        let g = mmm_cdag(2);
        assert_eq!(min_dominator_size(&g, &[]), 0);
    }
}
