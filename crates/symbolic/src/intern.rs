//! A global symbol interner.
//!
//! Symbolic analysis churns through enormous numbers of tiny expressions
//! whose leaves are a handful of distinct names (`N`, `S`, `D_i`, …).  The
//! seed implementation stored a heap-allocated `String` in every `Expr::Sym`
//! leaf, so every clone/compare in the simplifier paid for allocation and
//! byte-wise comparison.  [`Symbol`] replaces that with a `Copy` handle:
//! interning returns a dense `u32` id plus a cached `&'static str` (the
//! interner never frees names — the set of distinct symbols in any analysis
//! is tiny and bounded), making equality an integer compare and `as_str`
//! lock-free.
//!
//! Ordering is intentionally *string* ordering, not id ordering: canonical
//! expression form sorts terms/factors, and keeping the seed's string-based
//! sort means `Display` output is byte-identical to the pre-interning
//! implementation.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned symbol name: a `Copy` handle that compares by id and orders by
/// the underlying string.
#[derive(Clone, Copy)]
pub struct Symbol {
    id: u32,
    name: &'static str,
}

struct Interner {
    names: Vec<&'static str>,
    ids: HashMap<&'static str, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            ids: HashMap::new(),
        })
    })
}

impl Symbol {
    /// Intern a name, returning its canonical handle.
    pub fn intern(name: &str) -> Symbol {
        {
            // lint:allow(unwrap-expect): interner lock holders only intern strings; they cannot panic while holding it
            let r = interner().read().expect("interner lock poisoned");
            if let Some(&id) = r.ids.get(name) {
                return Symbol {
                    id,
                    name: r.names[id as usize],
                };
            }
        }
        // lint:allow(unwrap-expect): interner lock holders only intern strings; they cannot panic while holding it
        let mut w = interner().write().expect("interner lock poisoned");
        if let Some(&id) = w.ids.get(name) {
            return Symbol {
                id,
                name: w.names[id as usize],
            };
        }
        let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
        // lint:allow(unwrap-expect): u32 symbol-id overflow means four billion distinct names; a panic beats silent wraparound
        let id = u32::try_from(w.names.len()).expect("more than u32::MAX distinct symbols");
        w.names.push(leaked);
        w.ids.insert(leaked, id);
        Symbol { id, name: leaked }
    }

    /// The interned name.
    #[inline]
    pub fn as_str(self) -> &'static str {
        self.name
    }

    /// The dense interner id (stable within a process run).
    #[inline]
    pub fn id(self) -> u32 {
        self.id
    }
}

impl PartialEq for Symbol {
    #[inline]
    fn eq(&self, other: &Symbol) -> bool {
        self.id == other.id
    }
}

impl Eq for Symbol {}

impl std::hash::Hash for Symbol {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl Ord for Symbol {
    #[inline]
    fn cmp(&self, other: &Symbol) -> Ordering {
        if self.id == other.id {
            Ordering::Equal
        } else {
            self.name.cmp(other.name)
        }
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

impl From<&str> for Symbol {
    fn from(name: &str) -> Symbol {
        Symbol::intern(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("N");
        let b = Symbol::intern("N");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "N");
    }

    #[test]
    fn ordering_follows_strings_not_ids() {
        // Intern in reverse lexicographic order so id order and string order
        // disagree.
        let z = Symbol::intern("zzz_order_test");
        let a = Symbol::intern("aaa_order_test");
        assert!(a < z, "string order must win over id order");
    }

    #[test]
    fn distinct_names_are_distinct() {
        assert_ne!(Symbol::intern("x_distinct"), Symbol::intern("y_distinct"));
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::intern("concurrent_sym").id()))
            .collect();
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
