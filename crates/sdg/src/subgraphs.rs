//! Enumeration of the SDG subgraphs to evaluate.
//!
//! The worst case is exponential (the paper notes scaling to ~35 statements in
//! practice); we restrict enumeration to *connected* subsets of computed
//! arrays (connectivity through shared read-only arrays counts, so the two
//! halves of `mvt` form a valid pair) up to a configurable size, plus every
//! singleton.  A hard cap on the total number of subgraphs keeps degenerate
//! cases (fully-connected SDGs of large networks) bounded; when the cap drops
//! a subgraph the analysis notes that the reported bound may be looser than
//! optimal.
//!
//! The enumeration runs entirely on dense bitmask sets ([`BitSet`] over
//! computed-array indices, see [`Sdg::computed_adjacency`]) with hash-based
//! deduplication; array names only reappear in the final conversion of the
//! results.  The seed's string-set algorithm is retained as
//! [`enumerate_connected_subgraphs_naive`] — it is the differential-testing
//! reference and the "before" side of the `subgraph_enumeration` benchmark.
//!
//! ## Parallelism
//!
//! The breadth-first level expansion is parallelized over the frontier sets:
//! each level's *proposal* stage — per frontier set, the neighbourhood union,
//! the name-ordered candidate scan and the extended-set clones, which is
//! where all the time goes — runs on the shared worker pool (partitioned by
//! seed vertex at level 1, self-scheduled thereafter so one heavy seed
//! component cannot serialize a worker), while the cheap *commit* stage
//! (global dedup + count cap) replays the proposals sequentially in exactly
//! the serial discovery order.  The output — including which family survives
//! a truncating cap — is therefore byte-identical to a single-threaded run
//! for any thread count ([`rayon::worker_budget`]).

use crate::graph::Sdg;
use rayon::prelude::*;
use soap_bitset::BitSet;
use soap_symbolic::Deadline;
use std::collections::{BTreeSet, HashSet};

/// Below this many frontier sets a level is expanded serially: the per-level
/// thread-pool round trip costs more than the expansion itself.
const PARALLEL_FRONTIER_THRESHOLD: usize = 32;

/// Frontier sets per self-scheduled claim: proposal items are cheap (a few
/// bitset unions + clones), so claiming small blocks amortizes the shared
/// atomic without giving up balance under skew.
const FRONTIER_CHUNK: usize = 8;

/// The result of a subgraph enumeration.
#[derive(Clone, Debug)]
pub struct SubgraphEnumeration {
    /// Every enumerated connected subset, as sorted array-name lists.
    pub subgraphs: Vec<Vec<String>>,
    /// True iff at least one connected subset within the size limit was
    /// dropped because of the count cap.  Landing exactly on the cap without
    /// dropping anything does *not* count as truncation.
    pub truncated: bool,
    /// True iff the enumeration stopped early at a level boundary because a
    /// deadline expired or a plan-driven level cap tripped.  The subsets
    /// enumerated so far are complete and exactly the serial prefix; whole
    /// levels are simply missing.
    pub deadline_truncated: bool,
}

/// Enumerate connected subsets of the computed arrays of `sdg`, each of size
/// at most `max_size`, capped at `max_count` subsets (singletons are always
/// included and never dropped).
///
/// The enumeration is breadth-first over set size: level `k+1` is produced by
/// extending every level-`k` set with one neighbouring computed array.  The
/// result contains every connected subset up to the size/count limits exactly
/// once, and reports whether the cap actually dropped anything.
///
/// Discovery order matters only under truncation: extensions are tried in
/// array-*name* order (the seed iterated a `BTreeSet<String>` of candidates),
/// so the family that survives a cap is byte-identical to the seed's.
pub fn enumerate_connected_subgraphs(
    sdg: &Sdg,
    max_size: usize,
    max_count: usize,
) -> SubgraphEnumeration {
    enumerate_connected_subgraphs_governed(sdg, max_size, max_count, None, None)
}

/// [`enumerate_connected_subgraphs`] under a budget: the deadline (and the
/// fault plan's level cap) is checked once per breadth-first *level* — a
/// deterministic commit point — so an expiry never splits a level.  Every
/// level that starts, finishes; the enumerated family is always a serial
/// prefix of the full enumeration, and `deadline_truncated` reports whether
/// any level was abandoned.
pub fn enumerate_connected_subgraphs_governed(
    sdg: &Sdg,
    max_size: usize,
    max_count: usize,
    deadline: Option<&Deadline>,
    level_cap: Option<usize>,
) -> SubgraphEnumeration {
    let n = sdg.computed.len();
    let adj = sdg.computed_adjacency();
    let mut by_name: Vec<usize> = (0..n).collect();
    by_name.sort_by(|&a, &b| sdg.computed[a].cmp(&sdg.computed[b]));
    let singletons: Vec<BitSet> = (0..n).map(|i| BitSet::singleton(n, i)).collect();
    let mut seen: HashSet<BitSet> = singletons.iter().cloned().collect();
    let mut out: Vec<BitSet> = singletons.clone();
    let mut frontier = singletons;
    let mut truncated = false;
    let mut deadline_truncated = false;

    let mut candidates = BitSet::new(n);
    for size in 2..=max_size {
        if frontier.is_empty() || truncated {
            break;
        }
        // Budget check at the level boundary: stopping here keeps the output
        // an exact serial prefix (whole levels only), so a plan-driven level
        // cap gives byte-identical degraded results for any thread count.
        if level_cap.is_some_and(|cap| size >= cap) || deadline.is_some_and(|d| d.expired()) {
            deadline_truncated = true;
            break;
        }
        // Proposal stage: per frontier set, every one-vertex extension in
        // array-name order, pre-filtered against the *frozen* pre-level `seen`
        // (duplicates produced within this level are caught at commit time).
        let propose = |set: &BitSet| -> Vec<BitSet> {
            // All computed neighbours of the current set, minus the set.
            let mut candidates = BitSet::new(n);
            for v in set.iter() {
                candidates.union_with(&adj[v]);
            }
            candidates.subtract(set);
            let mut exts = Vec::new();
            for cand in by_name.iter().copied().filter(|&c| candidates.contains(c)) {
                let mut extended = set.clone();
                extended.insert(cand);
                if !seen.contains(&extended) {
                    exts.push(extended);
                }
            }
            exts
        };
        let proposals: Vec<Vec<BitSet>> =
            if frontier.len() >= PARALLEL_FRONTIER_THRESHOLD && rayon::worker_budget() > 1 {
                frontier
                    .par_iter()
                    .with_min_len(FRONTIER_CHUNK)
                    .map(propose)
                    .collect()
            } else {
                // Serial expansion, reusing one candidate buffer across sets.
                frontier
                    .iter()
                    .map(|set| {
                        candidates.clear();
                        for v in set.iter() {
                            candidates.union_with(&adj[v]);
                        }
                        candidates.subtract(set);
                        let mut exts = Vec::new();
                        for cand in by_name.iter().copied().filter(|&c| candidates.contains(c)) {
                            let mut extended = set.clone();
                            extended.insert(cand);
                            if !seen.contains(&extended) {
                                exts.push(extended);
                            }
                        }
                        exts
                    })
                    .collect()
            };
        // Commit stage: replay the proposals in frontier order — exactly the
        // serial discovery order — applying global dedup and the count cap.
        let mut next: Vec<BitSet> = Vec::new();
        'outer: for exts in proposals {
            for extended in exts {
                if seen.contains(&extended) {
                    continue;
                }
                if out.len() >= max_count {
                    // A genuinely new subset exists beyond the cap.
                    truncated = true;
                    break 'outer;
                }
                seen.insert(extended.clone());
                out.push(extended.clone());
                next.push(extended);
            }
        }
        frontier = next;
    }

    let subgraphs = out
        .iter()
        .map(|set| {
            let mut names: Vec<String> = set.iter().map(|i| sdg.computed[i].clone()).collect();
            names.sort();
            names
        })
        .collect();
    SubgraphEnumeration {
        subgraphs,
        truncated,
        deadline_truncated,
    }
}

/// The seed's string-set enumeration, kept as a slow reference.
///
/// Produces every connected subset up to `max_size`, capped at `max_count`,
/// as sorted name lists — semantically the set of subgraphs
/// [`enumerate_connected_subgraphs`] must reproduce (the differential tests
/// compare the two on chains, stars and dense random SDGs).  Unlike the fast
/// path it spends its time cloning `Vec<String>` sets into a `BTreeSet`,
/// which is exactly the behaviour the bitset rewrite removed.
pub fn enumerate_connected_subgraphs_naive(
    sdg: &Sdg,
    max_size: usize,
    max_count: usize,
) -> Vec<Vec<String>> {
    let computed: BTreeSet<String> = sdg.computed.iter().cloned().collect();
    let singletons: Vec<Vec<String>> = sdg.computed.iter().map(|a| vec![a.clone()]).collect();
    let mut seen: BTreeSet<Vec<String>> = singletons.iter().cloned().collect();
    let mut out: Vec<Vec<String>> = singletons.clone();
    let mut frontier = singletons;

    for _size in 2..=max_size {
        if frontier.is_empty() {
            break;
        }
        let mut next: Vec<Vec<String>> = Vec::new();
        'outer: for set in &frontier {
            let mut candidates: BTreeSet<String> = BTreeSet::new();
            for v in set {
                for n in sdg.neighbours(v) {
                    if computed.contains(&n) && !set.contains(&n) {
                        candidates.insert(n);
                    }
                }
            }
            for cand in candidates {
                let mut extended = set.clone();
                extended.push(cand);
                extended.sort();
                if seen.contains(&extended) {
                    continue;
                }
                if out.len() >= max_count {
                    break 'outer;
                }
                seen.insert(extended.clone());
                out.push(extended.clone());
                next.push(extended);
            }
        }
        frontier = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use soap_ir::ProgramBuilder;

    fn chain(n: usize) -> Sdg {
        // A chain of n statements: B1 = f(A0), B2 = f(B1), ...
        let mut b = ProgramBuilder::new("chain");
        for s in 0..n {
            let src = if s == 0 {
                "A0".to_string()
            } else {
                format!("B{}", s)
            };
            let dst = format!("B{}", s + 1);
            b = b.statement(move |st| {
                st.loops(&[("i", "0", "N")])
                    .write(&dst, "i")
                    .read(&src, "i")
            });
        }
        Sdg::from_program(&b.build().unwrap())
    }

    #[test]
    fn singletons_are_always_present() {
        let sdg = chain(4);
        let subs = enumerate_connected_subgraphs(&sdg, 1, 1000);
        assert_eq!(subs.subgraphs.len(), 4);
        assert!(!subs.truncated);
    }

    #[test]
    fn chain_has_contiguous_windows() {
        // Connected subsets of a path graph are exactly its contiguous windows:
        // n singletons + (n-1) pairs + (n-2) triples ... up to max_size.
        let sdg = chain(5);
        let subs = enumerate_connected_subgraphs(&sdg, 3, 10_000).subgraphs;
        let singles = subs.iter().filter(|s| s.len() == 1).count();
        let pairs = subs.iter().filter(|s| s.len() == 2).count();
        let triples = subs.iter().filter(|s| s.len() == 3).count();
        assert_eq!(singles, 5);
        assert_eq!(pairs, 4);
        assert_eq!(triples, 3);
    }

    #[test]
    fn no_duplicate_subsets() {
        let sdg = chain(6);
        let subs = enumerate_connected_subgraphs(&sdg, 4, 10_000).subgraphs;
        let mut seen = std::collections::BTreeSet::new();
        for s in &subs {
            assert!(seen.insert(s.clone()), "duplicate subset {s:?}");
        }
    }

    #[test]
    fn cap_limits_output() {
        let sdg = chain(30);
        let subs = enumerate_connected_subgraphs(&sdg, 8, 50);
        assert!(subs.subgraphs.len() <= 50);
        assert!(subs.truncated);
        assert!(!enumerate_connected_subgraphs(&sdg, 2, 10_000).truncated);
    }

    #[test]
    fn exact_cap_landing_is_not_truncation() {
        // chain(5) with max_size 2 has exactly 5 + 4 = 9 connected subsets.
        let sdg = chain(5);
        let exact = enumerate_connected_subgraphs(&sdg, 2, 9);
        assert_eq!(exact.subgraphs.len(), 9);
        assert!(
            !exact.truncated,
            "landing exactly on the cap without dropping anything must not report truncation"
        );
        let short = enumerate_connected_subgraphs(&sdg, 2, 8);
        assert_eq!(short.subgraphs.len(), 8);
        assert!(short.truncated, "one pair was genuinely dropped");
    }

    #[test]
    fn governed_level_cap_keeps_a_serial_prefix() {
        let sdg = chain(5);
        let full = enumerate_connected_subgraphs(&sdg, 3, 10_000);
        assert!(!full.deadline_truncated);
        let capped = enumerate_connected_subgraphs_governed(&sdg, 3, 10_000, None, Some(2));
        assert!(capped.deadline_truncated);
        // cancel_at_level=2 keeps only the singletons — an exact serial prefix.
        assert_eq!(capped.subgraphs, full.subgraphs[..5].to_vec());
        let cap3 = enumerate_connected_subgraphs_governed(&sdg, 3, 10_000, None, Some(3));
        assert!(cap3.deadline_truncated);
        assert_eq!(cap3.subgraphs, full.subgraphs[..9].to_vec());
    }

    #[test]
    fn governed_deadline_stops_at_a_level_boundary() {
        let sdg = chain(5);
        let expired = Deadline::never();
        expired.cancel();
        let got = enumerate_connected_subgraphs_governed(&sdg, 3, 10_000, Some(&expired), None);
        assert!(got.deadline_truncated);
        assert_eq!(got.subgraphs.len(), 5, "singletons always survive");
        let live = Deadline::never();
        let ungoverned = enumerate_connected_subgraphs(&sdg, 3, 10_000);
        let governed = enumerate_connected_subgraphs_governed(&sdg, 3, 10_000, Some(&live), None);
        assert!(!governed.deadline_truncated);
        assert_eq!(governed.subgraphs, ungoverned.subgraphs);
    }

    #[test]
    fn star_topology_through_shared_input() {
        // Two independent consumers of the same read-only array are adjacent.
        let p = ProgramBuilder::new("star")
            .statement(|st| st.loops(&[("i", "0", "N")]).write("B", "i").read("A", "i"))
            .statement(|st| st.loops(&[("i", "0", "N")]).write("C", "i").read("A", "i"))
            .build()
            .unwrap();
        let sdg = Sdg::from_program(&p);
        let subs = enumerate_connected_subgraphs(&sdg, 2, 100).subgraphs;
        assert!(subs.contains(&vec!["B".to_string(), "C".to_string()]));
    }
}
