//! Load harness for the `soap-serve` analysis daemon.
//!
//! Drives a mixed workload — registry-kernel `GET`s plus `POST`ed source
//! programs that are loop-variable renamings of each other — against one
//! server over real keep-alive TCP connections, and reports client-side
//! latency percentiles and throughput together with the server's own
//! `/stats` accounting (dedup ratio, coalescing, solve-cache hits).
//!
//! The workload is deterministic by construction: worker `w`'s `n`-th
//! request is a pure function of `(w, n)`, so two runs of the same
//! configuration exercise the same request mix.  The renamed-source variants
//! are the point of the mix: they hash to the same canonical key, so a
//! healthy server answers all but the first from the response memo — the
//! measured steady state is the dedup path the daemon exists for.
//!
//! Used by the `loadgen` binary (standalone runs and the CI smoke test) and
//! by the `perf` snapshot (the `serve/*` benches in `BENCH_*.json`).

use serde_json::Value;
use soap_serve::{RunningServer, ServeConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Registry kernels cycled by the `GET /analyze?kernel=` share of the mix —
/// the cheap Polybench end of Table 2, so warm-up stays fast while still
/// exercising many distinct memo entries.
const KERNEL_MIX: &[&str] = &[
    "atax",
    "bicg",
    "gemm",
    "gemver",
    "gesummv",
    "mvt",
    "2mm",
    "3mm",
    "jacobi-1d",
    "jacobi-2d",
    "trmm",
    "syrk",
];

/// Distinct program structures in the POSTed-source share of the mix (array
/// names differ, so each is a separate canonical key)…
const STRUCTURES: usize = 6;
/// …and loop-variable renamings of each (hash-identical, so every variant
/// beyond the first is a guaranteed dedup hit).
const VARIANTS: usize = 3;

/// One configured load run.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Target server address; `None` starts an in-process [`RunningServer`]
    /// on an ephemeral port (still exercised over real TCP).
    pub addr: Option<String>,
    /// Length of the timed window (after warm-up).
    pub duration: Duration,
    /// Concurrent client connections, one OS thread each.
    pub connections: usize,
    /// Untimed requests per connection before the clock starts, so the timed
    /// window measures the dedup steady state rather than first-solve cost.
    pub warmup_requests: usize,
    /// Store directory for the in-process server (ignored with `addr`).
    pub cache_dir: Option<String>,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: None,
            duration: Duration::from_millis(2000),
            connections: 8,
            warmup_requests: 96,
            cache_dir: None,
        }
    }
}

/// What one load run measured: client-side latency/throughput plus the
/// server-side counter deltas over the timed window.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Timed requests completed (excludes warm-up).
    pub requests: u64,
    /// Wall clock of the timed window in milliseconds.
    pub elapsed_ms: f64,
    /// `requests / elapsed`, in requests per second.
    pub throughput_rps: f64,
    /// Median request latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency in milliseconds.
    pub p99_ms: f64,
    /// Slowest single request in milliseconds.
    pub max_ms: f64,
    /// Responses by status class (client-side counts; `status_429` is the
    /// backpressure slice of `status_4xx`).
    pub status_2xx: u64,
    /// 4xx responses (includes 429).
    pub status_4xx: u64,
    /// 429 responses (queue-full backpressure).
    pub status_429: u64,
    /// 5xx responses — zero on a healthy server.
    pub status_5xx: u64,
    /// Server-side over the whole run: deduplicated `/analyze` requests
    /// (memo hits + coalesced followers) divided by `/analyze` requests.
    pub dedup_ratio: f64,
    /// Server-side delta: `/analyze` requests observed.
    pub analyze_requests: u64,
    /// Server-side delta: analyses actually executed.
    pub analyses: u64,
    /// Server-side delta: responses answered from the memo.
    pub response_cache_hits: u64,
    /// Server-side delta: followers that coalesced onto an in-flight leader.
    pub coalesced: u64,
    /// Cumulative solve-cache disk-store hits (nonzero when the server was
    /// started over a pre-populated `--cache-dir`).
    pub store_hits: u64,
    /// Cumulative finished-report replays (nonzero when the server was
    /// started over a `--cache-dir` holding report records: whole analyses
    /// answered without running the pipeline at all).
    pub report_hits: u64,
    /// Largest `Retry-After` value observed on a 429, in seconds (0 when no
    /// request was rejected).  Under saturation this grows with the queue
    /// depth the server observed at rejection.
    pub retry_after_max_secs: u64,
    /// The server's final `/stats` snapshot, verbatim.
    pub stats: Value,
}

impl LoadReport {
    /// The report as a JSON object (embedded in `BENCH_*.json` and written
    /// by `loadgen --out`).
    pub fn to_value(&self) -> Value {
        let int = |n: u64| Value::Int(n as i128);
        Value::Object(vec![
            ("requests".to_string(), int(self.requests)),
            ("elapsed_ms".to_string(), Value::Float(self.elapsed_ms)),
            (
                "throughput_rps".to_string(),
                Value::Float(self.throughput_rps),
            ),
            ("p50_ms".to_string(), Value::Float(self.p50_ms)),
            ("p99_ms".to_string(), Value::Float(self.p99_ms)),
            ("max_ms".to_string(), Value::Float(self.max_ms)),
            ("status_2xx".to_string(), int(self.status_2xx)),
            ("status_4xx".to_string(), int(self.status_4xx)),
            ("status_429".to_string(), int(self.status_429)),
            ("status_5xx".to_string(), int(self.status_5xx)),
            ("dedup_ratio".to_string(), Value::Float(self.dedup_ratio)),
            ("analyze_requests".to_string(), int(self.analyze_requests)),
            ("analyses".to_string(), int(self.analyses)),
            (
                "response_cache_hits".to_string(),
                int(self.response_cache_hits),
            ),
            ("coalesced".to_string(), int(self.coalesced)),
            ("store_hits".to_string(), int(self.store_hits)),
            ("report_hits".to_string(), int(self.report_hits)),
            (
                "retry_after_max_secs".to_string(),
                int(self.retry_after_max_secs),
            ),
        ])
    }
}

/// Per-worker measurement accumulator.
#[derive(Default)]
struct WorkerTally {
    latencies_us: Vec<u64>,
    status_2xx: u64,
    status_4xx: u64,
    status_429: u64,
    status_5xx: u64,
    retry_after_max_secs: u64,
}

/// The POSTed-source corpus: `STRUCTURES` distinct matmul-shaped programs
/// (distinct array names), each in `VARIANTS` loop-variable renamings.
/// Variant `v` of structure `s` sits at index `s * VARIANTS + v`.
fn mutated_sources() -> Vec<String> {
    let prefixes = ["i", "u", "w"];
    let mut sources = Vec::with_capacity(STRUCTURES * VARIANTS);
    for s in 0..STRUCTURES {
        for prefix in prefixes.iter().take(VARIANTS) {
            let (a, b, c) = (
                format!("{prefix}0"),
                format!("{prefix}1"),
                format!("{prefix}2"),
            );
            sources.push(format!(
                "for {a} in range(0, N):\n    for {b} in range(0, N):\n        for {c} in range(0, N):\n            LC{s}[{a}][{b}] += LA{s}[{a}][{c}] * LB{s}[{c}][{b}]\n"
            ));
        }
    }
    sources
}

/// Issue worker `w`'s `seq`-th request: every third request is a registry
/// kernel `GET`, the rest POST renamed sources.  Returns the HTTP status and
/// the `Retry-After` advice (429 rejections only), in seconds.
fn issue(
    client: &mut httpd::Client,
    sources: &[String],
    worker: usize,
    seq: usize,
) -> std::io::Result<(u16, Option<u64>)> {
    let step = seq.wrapping_add(worker.wrapping_mul(7));
    let resp = if step.is_multiple_of(3) {
        let kernel = KERNEL_MIX[(step / 3) % KERNEL_MIX.len()];
        client.get(&format!("/analyze?kernel={kernel}"))?
    } else {
        let structure = step % STRUCTURES;
        let variant = (step / STRUCTURES) % VARIANTS;
        let body = &sources[structure * VARIANTS + variant];
        client.post(
            &format!("/analyze?lang=python&name=load{structure}"),
            "text/plain",
            body.as_bytes(),
        )?
    };
    let retry_after = resp
        .header("retry-after")
        .and_then(|h| h.parse::<u64>().ok());
    Ok((resp.status, retry_after))
}

fn fetch_stats(addr: &str) -> Result<Value, String> {
    let mut client =
        httpd::Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let resp = client
        .get("/stats")
        .map_err(|e| format!("GET /stats failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!("GET /stats returned {}", resp.status));
    }
    let body = resp.body_utf8().ok_or("stats body is not UTF-8")?;
    serde_json::from_str(body).map_err(|e| format!("stats body is not JSON: {e:?}"))
}

fn counter(stats: &Value, key: &str) -> u64 {
    stats
        .get(key)
        .and_then(|v| v.as_i128())
        .and_then(|n| u64::try_from(n).ok())
        .unwrap_or(0)
}

/// `p`-th percentile (0..=1) of an ascending `sorted` sample, in
/// milliseconds.
fn percentile_ms(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64 / 1e3
}

/// Run one configured load test.  Starts (and cleanly stops) an in-process
/// server unless `config.addr` points at an external one.
pub fn run_load(config: &LoadConfig) -> Result<LoadReport, String> {
    let (server, addr) = match &config.addr {
        Some(addr) => (None, addr.clone()),
        None => {
            let server = RunningServer::start(ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                cache_dir: config.cache_dir.clone(),
                ..ServeConfig::default()
            })
            .map_err(|e| format!("cannot start in-process server: {e}"))?;
            let addr = server.addr().to_string();
            (Some(server), addr)
        }
    };
    let connections = config.connections.max(1);
    let before = fetch_stats(&addr)?;

    let stop = Arc::new(AtomicBool::new(false));
    // All workers warm up before any worker's clock starts (+1: the main
    // thread owns the duration timer).
    let barrier = Arc::new(Barrier::new(connections + 1));
    let sources = Arc::new(mutated_sources());
    let workers: Vec<_> = (0..connections)
        .map(|worker| {
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            let sources = Arc::clone(&sources);
            let addr = addr.clone();
            let warmup = config.warmup_requests;
            std::thread::spawn(move || -> Result<WorkerTally, String> {
                let mut client = httpd::Client::connect(addr.as_str())
                    .map_err(|e| format!("worker {worker}: cannot connect: {e}"))?;
                for seq in 0..warmup {
                    issue(&mut client, &sources, worker, seq)
                        .map_err(|e| format!("worker {worker}: warm-up request failed: {e}"))?;
                }
                barrier.wait();
                let mut tally = WorkerTally::default();
                let mut seq = warmup;
                while !stop.load(Ordering::Relaxed) {
                    // lint:allow(instant-now): the load harness measures wall-clock latency by design; reporting-only
                    let t = Instant::now();
                    let (status, retry_after) = issue(&mut client, &sources, worker, seq)
                        .map_err(|e| format!("worker {worker}: request failed: {e}"))?;
                    tally.latencies_us.push(t.elapsed().as_micros() as u64);
                    match status {
                        200..=299 => tally.status_2xx += 1,
                        429 => {
                            tally.status_429 += 1;
                            tally.status_4xx += 1;
                            if let Some(secs) = retry_after {
                                tally.retry_after_max_secs = tally.retry_after_max_secs.max(secs);
                            }
                        }
                        400..=499 => tally.status_4xx += 1,
                        _ => tally.status_5xx += 1,
                    }
                    seq += 1;
                }
                Ok(tally)
            })
        })
        .collect();

    barrier.wait();
    // lint:allow(instant-now): the load harness measures wall-clock latency by design; reporting-only
    let window = Instant::now();
    std::thread::sleep(config.duration);
    stop.store(true, Ordering::Relaxed);
    let mut latencies: Vec<u64> = Vec::new();
    let mut tally = WorkerTally::default();
    for worker in workers {
        let t = worker.join().map_err(|_| "worker panicked".to_string())??;
        latencies.extend(&t.latencies_us);
        tally.status_2xx += t.status_2xx;
        tally.status_4xx += t.status_4xx;
        tally.status_429 += t.status_429;
        tally.status_5xx += t.status_5xx;
        tally.retry_after_max_secs = tally.retry_after_max_secs.max(t.retry_after_max_secs);
    }
    // Includes the tail until the last worker observed `stop`, so the
    // throughput denominator never undercounts the measured window.
    let elapsed = window.elapsed();
    latencies.sort_unstable();

    let after = fetch_stats(&addr)?;
    if let Some(server) = server {
        server
            .stop()
            .map_err(|e| format!("in-process server failed to stop cleanly: {e}"))?;
    }

    let delta = |key: &str| counter(&after, key).saturating_sub(counter(&before, key));
    let analyze_requests = delta("analyze_requests");
    let deduped = delta("response_cache_hits") + delta("coalesced");
    let requests = latencies.len() as u64;
    let elapsed_ms = elapsed.as_secs_f64() * 1e3;
    Ok(LoadReport {
        requests,
        elapsed_ms,
        throughput_rps: requests as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
        max_ms: latencies.last().copied().unwrap_or(0) as f64 / 1e3,
        status_2xx: tally.status_2xx,
        status_4xx: tally.status_4xx,
        status_429: tally.status_429,
        status_5xx: tally.status_5xx,
        dedup_ratio: deduped as f64 / (analyze_requests as f64).max(1.0),
        analyze_requests,
        analyses: delta("analyses"),
        response_cache_hits: delta("response_cache_hits"),
        coalesced: delta("coalesced"),
        store_hits: after
            .get("solve_cache")
            .map(|c| counter(c, "store_hits"))
            .unwrap_or(0),
        report_hits: after
            .get("solve_cache")
            .map(|c| counter(c, "report_hits"))
            .unwrap_or(0),
        retry_after_max_secs: tally.retry_after_max_secs,
        stats: after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renamed_variants_exist_and_registry_mix_resolves() {
        let sources = mutated_sources();
        assert_eq!(sources.len(), STRUCTURES * VARIANTS);
        for name in KERNEL_MIX {
            assert!(
                soap_kernels::by_name(name).is_some(),
                "kernel {name} missing from the registry"
            );
        }
    }

    #[test]
    fn saturated_server_scales_retry_after_with_queue_depth() {
        // One slot, two queue seats: any rejection necessarily observes both
        // seats taken (the gate only rejects at running + queued == 3), so
        // every 429 must advertise base × (1 + 2) = 3 seconds — grown from
        // the empty-queue base of 1.
        let server = RunningServer::start(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            analysis_slots: 1,
            queue_capacity: 2,
            http_threads: 16,
            ..ServeConfig::default()
        })
        .expect("server starts");
        let addr = server.addr().to_string();
        let observed = Arc::new(std::sync::Mutex::new(Vec::<u64>::new()));
        let threads: Vec<_> = (0..8)
            .map(|w| {
                let addr = addr.clone();
                let observed = Arc::clone(&observed);
                std::thread::spawn(move || {
                    let mut client =
                        httpd::Client::connect(addr.as_str()).expect("worker connects");
                    // Every request is a structurally fresh program (array
                    // names embed worker and sequence), so nothing is memoized
                    // or coalesced — each one needs the single analysis slot.
                    for n in 0..40 {
                        let src = format!(
                            "for i in range(0, N):\n    for j in range(0, N):\n        C{w}x{n}[i][j] += A{w}x{n}[i][j] * B{w}x{n}[j][i]\n"
                        );
                        let resp = client
                            .post(
                                &format!("/analyze?lang=python&name=sat{w}_{n}"),
                                "text/plain",
                                src.as_bytes(),
                            )
                            .expect("post succeeds");
                        if resp.status == 429 {
                            let secs = resp
                                .header("retry-after")
                                .and_then(|h| h.parse::<u64>().ok())
                                .expect("429 carries a numeric Retry-After");
                            observed.lock().unwrap().push(secs);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker thread");
        }
        server.stop().expect("clean stop");
        let observed = observed.lock().unwrap();
        assert!(
            !observed.is_empty(),
            "8 workers of fresh programs against one slot must overflow the queue"
        );
        assert!(
            observed.iter().all(|&secs| secs == 3),
            "rejections at full queue advertise the scaled back-off: {observed:?}"
        );
    }

    #[test]
    fn short_in_process_run_is_clean_and_deduplicated() {
        let report = run_load(&LoadConfig {
            duration: Duration::from_millis(250),
            connections: 4,
            warmup_requests: 24,
            ..LoadConfig::default()
        })
        .expect("load run succeeds");
        assert!(report.requests > 0, "{report:?}");
        assert_eq!(report.status_5xx, 0, "{report:?}");
        assert_eq!(report.status_4xx, 0, "{report:?}");
        assert!(
            report.dedup_ratio > 0.5,
            "steady state should be memo-served: {report:?}"
        );
        assert!(report.p99_ms >= report.p50_ms);
    }
}
