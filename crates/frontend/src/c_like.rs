//! The C-like dialect: brace-scoped `for (i = lo; i < hi; i++) { ... }`.

use crate::rhs::{group_reads, parse_assignment};
use crate::{FrontendError, MAX_LOOP_DEPTH, MAX_SOURCE_BYTES};
use soap_ir::parse::parse_affine;
use soap_ir::{ArrayAccess, IterationDomain, LoopVar, Program, Statement};

/// Parse a C-like program into SOAP IR.
///
/// Supported constructs: `for (v = lo; v < hi; v++) {` (also `<=` upper
/// bounds and `++v`), array assignments terminated by `;`, `//` comments and
/// braces.  Declarations, scalar statements and other C constructs that do not
/// touch arrays are ignored, mirroring how the paper's tool extracts only the
/// access structure from C code.
pub fn parse_c(name: &str, source: &str) -> Result<Program, FrontendError> {
    if source.len() > MAX_SOURCE_BYTES {
        return Err(FrontendError::SourceTooLarge {
            bytes: source.len(),
        });
    }
    let mut stack: Vec<LoopVar> = Vec::new();
    // Number of loops opened at each brace depth, so `}` pops correctly.
    let mut brace_is_loop: Vec<bool> = Vec::new();
    let mut statements = Vec::new();

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let without_comment = raw.split("//").next().unwrap_or("");
        let mut rest = without_comment.trim();
        let col = |s: &str| crate::column_of(raw, s);
        while !rest.is_empty() {
            if let Some(r) = rest.strip_prefix('}') {
                if let Some(was_loop) = brace_is_loop.pop() {
                    if was_loop {
                        stack.pop();
                    }
                }
                rest = r.trim_start();
                continue;
            }
            if rest.starts_with("for") {
                let open = rest.find('(').ok_or(FrontendError::Syntax {
                    line: line_no,
                    column: col(rest),
                    message: "malformed for loop".into(),
                })?;
                // Find the close paren *matching* the open by scanning
                // forward.  `rfind(')')` would pair with a stray ')' before
                // the '(' (an inverted, panicking slice) or with a ')' in
                // trailing code on the same line.
                let mut depth = 0usize;
                let mut close = None;
                for (off, b) in rest.bytes().enumerate().skip(open) {
                    match b {
                        b'(' => depth += 1,
                        b')' => {
                            depth -= 1;
                            if depth == 0 {
                                close = Some(off);
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                let close = close.ok_or(FrontendError::Syntax {
                    line: line_no,
                    column: col(rest),
                    message: "malformed for loop".into(),
                })?;
                let header = &rest[open + 1..close];
                let parts: Vec<&str> = header.split(';').collect();
                if parts.len() != 3 {
                    return Err(FrontendError::Syntax {
                        line: line_no,
                        column: col(header),
                        message: "for loop header must have three clauses".into(),
                    });
                }
                let init = parts[0];
                let cond = parts[1];
                let (var, lo) = init.split_once('=').ok_or(FrontendError::Syntax {
                    line: line_no,
                    column: col(init),
                    message: "for loop initialization must be 'var = expr'".into(),
                })?;
                let var = var.trim().trim_start_matches("int").trim();
                let lower = parse_affine(lo.trim())?;
                let (upper, inclusive) = if let Some((_, ub)) = cond.split_once("<=") {
                    (parse_affine(ub.trim())?, true)
                } else if let Some((_, ub)) = cond.split_once('<') {
                    (parse_affine(ub.trim())?, false)
                } else {
                    return Err(FrontendError::Syntax {
                        line: line_no,
                        column: col(cond),
                        message: "for loop condition must be 'var < bound' or 'var <= bound'"
                            .into(),
                    });
                };
                let upper = if inclusive { upper.offset(1) } else { upper };
                if stack.len() >= MAX_LOOP_DEPTH {
                    return Err(FrontendError::NestingTooDeep { line: line_no });
                }
                stack.push(LoopVar::new(var, lower, upper));
                // Whatever follows the loop header on this line.
                rest = rest[close + 1..].trim_start();
                if let Some(r) = rest.strip_prefix('{') {
                    brace_is_loop.push(true);
                    rest = r.trim_start();
                } else {
                    // Single-statement loop bodies without braces are treated
                    // as braced: the next `;`-terminated statement closes it.
                    brace_is_loop.push(true);
                }
                continue;
            }
            if let Some(r) = rest.strip_prefix('{') {
                brace_is_loop.push(false);
                rest = r.trim_start();
                continue;
            }
            // A statement up to the next ';'.
            let Some(semi) = rest.find(';') else {
                break;
            };
            let stmt_text = rest[..semi].trim();
            rest = rest[semi + 1..].trim_start();
            if stmt_text.is_empty() || !stmt_text.contains('=') || !stmt_text.contains('[') {
                continue;
            }
            if stack.is_empty() {
                return Err(FrontendError::StatementOutsideLoop { line: line_no });
            }
            let assignment = parse_assignment(stmt_text, line_no, col(stmt_text))?;
            let st = Statement {
                name: format!("St{}", statements.len() + 1),
                domain: IterationDomain::new(stack.clone()),
                output: ArrayAccess::single(
                    assignment.output.0.clone(),
                    assignment.output.1.clone(),
                ),
                inputs: group_reads(assignment.reads),
                is_update: assignment.is_update,
            };
            st.validate()?;
            statements.push(st);
        }
    }
    let program = Program::new(name, statements);
    program.validate()?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_c_style_gemm() {
        let src = r#"
for (i = 0; i < NI; i++) {
  for (j = 0; j < NJ; j++) {
    for (k = 0; k < NK; k++) {
      C[i][j] += A[i][k] * B[k][j];
    }
  }
}
"#;
        let p = parse_c("gemm", src).unwrap();
        assert_eq!(p.statements.len(), 1);
        let st = &p.statements[0];
        assert!(st.is_update);
        assert_eq!(st.domain.depth(), 3);
        assert_eq!(st.inputs.len(), 2);
        assert_eq!(st.parameters(), vec!["NI", "NJ", "NK"]);
    }

    #[test]
    fn parses_lu_with_dependent_bounds_and_inclusive_conditions() {
        let src = r#"
for (k = 0; k < N; k++) {
  for (i = k + 1; i < N; i++) {
    for (j = k + 1; j <= N - 1; j++) {
      A[i][j] = A[i][j] - A[i][k] * A[k][j];
    }
  }
}
"#;
        let p = parse_c("lu", src).unwrap();
        let st = &p.statements[0];
        assert_eq!(st.domain.loops[1].lower, parse_affine("k + 1").unwrap());
        assert_eq!(st.domain.loops[2].upper, parse_affine("N").unwrap());
        // `A[i][j] = A[i][j] - ...` reads its own output: the analysis treats
        // it via the §5.2 projection; here we only check the structure.
        assert_eq!(st.inputs.len(), 1);
        assert_eq!(st.inputs[0].num_components(), 3);
    }

    #[test]
    fn multiple_loop_nests_produce_multiple_statements() {
        let src = r#"
for (i = 0; i < N; i++) {
  for (j = 0; j < M; j++) {
    tmp[i] += A[i][j] * x[j];
  }
}
for (i = 0; i < N; i++) {
  for (j = 0; j < M; j++) {
    y[j] += A[i][j] * tmp[i];
  }
}
"#;
        let p = parse_c("atax", src).unwrap();
        assert_eq!(p.statements.len(), 2);
        assert_eq!(p.computed_arrays(), vec!["tmp", "y"]);
    }

    #[test]
    fn rejects_malformed_loops() {
        assert!(parse_c("bad", "for (i) { A[i] = B[i]; }").is_err());
        assert!(parse_c("bad", "A[i] = B[i];").is_err());
    }

    #[test]
    fn close_paren_before_open_is_an_error_not_a_panic() {
        // `rfind(')')` used to pair this stray ')' with the later '(' and
        // slice backwards, panicking.
        assert!(parse_c("bad", "for ) ( { A[i] = B[i]; }").is_err());
        assert!(parse_c("bad", "for (i = 0; i < N; i++ { A[i] = B[i]; }").is_err());
    }

    #[test]
    fn rejects_oversized_sources_and_too_deep_nesting() {
        let big = "x".repeat(MAX_SOURCE_BYTES + 1);
        assert!(matches!(
            parse_c("big", &big),
            Err(FrontendError::SourceTooLarge { .. })
        ));
        let mut nested = String::new();
        for d in 0..=MAX_LOOP_DEPTH {
            nested.push_str(&format!("for (v{d} = 0; v{d} < N; v{d}++) {{\n"));
        }
        nested.push_str("A[v0] = B[v0];\n");
        nested.push_str(&"}\n".repeat(MAX_LOOP_DEPTH + 1));
        assert!(matches!(
            parse_c("deep", &nested),
            Err(FrontendError::NestingTooDeep { line }) if line == MAX_LOOP_DEPTH + 1
        ));
    }

    #[test]
    fn syntax_errors_carry_line_and_column() {
        // The one-clause header `j` starts at column 8 of line 2.
        let err = parse_c("bad", "for (i = 0; i < N; i++) {\n  for (j) { }\n}").unwrap_err();
        match err {
            FrontendError::Syntax { line, column, .. } => {
                assert_eq!(line, 2);
                assert_eq!(column, 8);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
