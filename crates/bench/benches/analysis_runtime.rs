//! End-to-end analysis runtime over representative applications — the
//! "fully automatic tool" claim of the paper (input program → symbolic bound).

use criterion::{criterion_group, criterion_main, Criterion};
use soap_bench::analyze_kernel;

fn bench_runtime(c: &mut Criterion) {
    let registry = soap_kernels::registry();
    let mut group = c.benchmark_group("analysis_runtime");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    // One representative per group keeps the bench short; the full sweep is
    // exercised by the `table2` binary and the integration tests.
    for name in ["gemm", "fdtd-2d", "bert-encoder", "lulesh"] {
        let entry = registry
            .iter()
            .find(|e| e.name == name)
            .expect("kernel exists");
        group.bench_function(name, |b| b.iter(|| analyze_kernel(entry)));
    }
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
