//! Cross-program batch analysis: many programs, one shared solve cache.
//!
//! The paper's headline result is a *suite* of bounds — dozens of kernels
//! analyzed by the same machinery — and real suites are full of renamed
//! copies of the same structures (gemm/2mm/3mm/bert's matmuls, the
//! jacobi/heat stencil family).  The canonical solve-cache key is
//! renaming-invariant, so sharing one [`SolveCache`] across the whole suite
//! solves each structure once *per suite* instead of once per kernel:
//! analyze the class, not the instance.
//!
//! [`analyze_suite`] runs a slice of [`SuiteProgram`]s through rayon over a
//! shared sharded cache with per-program error isolation (one failing
//! program reports its error in its [`ProgramReport`]; the rest of the suite
//! is unaffected) and returns a [`BatchAnalysis`]: per-program results and
//! timings plus a [`SuiteSummary`] with suite-wide cache accounting in which
//! cross-program hits are distinguishable from intra-program hits.
//!
//! Batch results are **byte-identical** to sequential per-program
//! [`analyze_program_with`](crate::analyze_program_with) calls regardless of
//! shard count, thread count, or program order: a cache miss solves the
//! *canonical model* of the structure, never the requesting representative
//! (see [`crate::cache`]).

use crate::analysis::{
    analyze_program_governed, analyze_program_with_cache, panic_message, PhaseTimings,
    ProgramAnalysis, SdgOptions,
};
use crate::cache::{CacheStats, SolveCache};
use rayon::prelude::*;
use soap_core::AnalysisError;
use soap_ir::Program;
use soap_symbolic::Deadline;
use std::time::{Duration, Instant};

/// One unit of batch work: a program plus the options to analyze it with.
#[derive(Clone, Debug)]
pub struct SuiteProgram {
    /// Report name (defaults to the program's own name).
    pub name: String,
    /// The program to analyze.
    pub program: Program,
    /// Analysis options for this program.
    pub opts: SdgOptions,
}

impl SuiteProgram {
    /// A suite entry named after the program, with the given options.
    pub fn new(program: Program, opts: SdgOptions) -> SuiteProgram {
        SuiteProgram {
            name: program.name.clone(),
            program,
            opts,
        }
    }

    /// A suite entry named after the program, with default options.
    pub fn with_default_opts(program: Program) -> SuiteProgram {
        SuiteProgram::new(program, SdgOptions::default())
    }
}

/// The outcome of one program of a batch run.
#[derive(Clone, Debug)]
pub struct ProgramReport {
    /// The suite entry's name.
    pub name: String,
    /// Wall-clock milliseconds spent analyzing this program.
    pub analysis_ms: f64,
    /// The analysis, or the error that failed it (isolated: other programs
    /// of the suite are unaffected).
    pub outcome: Result<ProgramAnalysis, AnalysisError>,
}

/// Aggregated accounting of one batch run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SuiteSummary {
    /// Programs analyzed.
    pub programs: usize,
    /// Programs whose analysis returned an error.
    pub failures: usize,
    /// Wall-clock milliseconds for the whole suite (parallel over programs).
    pub wall_ms: f64,
    /// Suite entries whose name collided with an earlier entry and were
    /// disambiguated to `name#2`, `name#3`, … in their [`ProgramReport`] (see
    /// [`analyze_suite_with`]).  0 when every entry name was unique.
    pub duplicate_names: usize,
    /// Sum of the per-program analysis times (equals `wall_ms` up to
    /// bookkeeping overhead on a single-threaded host; smaller than the sum
    /// under parallel execution).
    pub sum_program_ms: f64,
    /// Subgraph models attempted across the suite.
    pub subgraphs_enumerated: usize,
    /// Suite-wide per-phase timing totals (the successful programs'
    /// [`PhaseTimings`] summed; worker-summed phases can exceed `wall_ms`).
    pub phases: PhaseTimings,
    /// Suite-wide cache accounting: the shared cache's counter deltas over
    /// this run.  `cache.cross_program_hits` counts hits answered from a
    /// structure first solved by a *different* program — the dedup that only
    /// the shared cache provides; `cache.hits - cache.cross_program_hits`
    /// are ordinary intra-program hits.
    pub cache: CacheStats,
    /// Programs whose analysis completed *degraded* (deadline or plan-driven
    /// cancellation abandoned part of the work; the reported bound is a sound
    /// partial bound).  Degraded is not a failure: the programs count toward
    /// `programs`, not `failures`.  Always 0 on an ungoverned, fault-free
    /// run, and then omitted from the serialized summary.
    pub degraded: usize,
    /// Total array contributions deferred (counted as zero) across degraded
    /// programs.  Omitted from the serialized summary when 0.
    pub arrays_deferred: usize,
}

impl serde::Serialize for SuiteSummary {
    /// The canonical JSON record of a suite's accounting — one definition
    /// shared by `soap-cli batch`, `table2 --suite-json` and the perf
    /// snapshot's `suite_stats`, so the emitters cannot drift apart.
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("programs".to_string(), self.programs.to_value()),
            ("failures".to_string(), self.failures.to_value()),
            (
                "duplicate_names".to_string(),
                self.duplicate_names.to_value(),
            ),
            ("wall_ms".to_string(), self.wall_ms.to_value()),
            ("sum_program_ms".to_string(), self.sum_program_ms.to_value()),
            (
                "subgraphs_enumerated".to_string(),
                self.subgraphs_enumerated.to_value(),
            ),
            ("phases".to_string(), self.phases.to_value()),
            ("cache".to_string(), self.cache.to_value()),
        ];
        // Degradation accounting is emitted only when present, so the
        // serialized summary of an ungoverned, fault-free run stays
        // byte-identical to earlier releases.
        if self.degraded > 0 || self.arrays_deferred > 0 {
            fields.push(("degraded".to_string(), self.degraded.to_value()));
            fields.push((
                "arrays_deferred".to_string(),
                self.arrays_deferred.to_value(),
            ));
        }
        serde::Value::Object(fields)
    }
}

/// The result of a batch run: per-program reports (in input order) plus the
/// aggregated [`SuiteSummary`].
#[derive(Clone, Debug)]
pub struct BatchAnalysis {
    /// One report per suite entry, in input order.
    pub reports: Vec<ProgramReport>,
    /// Aggregated suite accounting.
    pub summary: SuiteSummary,
}

impl BatchAnalysis {
    /// Look up a report by suite-entry name.
    pub fn report(&self, name: &str) -> Option<&ProgramReport> {
        self.reports.iter().find(|r| r.name == name)
    }
}

/// Analyze a suite of programs over a fresh shared [`SolveCache`].
pub fn analyze_suite(jobs: &[SuiteProgram]) -> BatchAnalysis {
    analyze_suite_with(jobs, &SolveCache::new())
}

/// Analyze a suite of programs over a caller-provided shared cache (e.g.
/// [`crate::cache::global_solve_cache`] in a long-running service, so
/// structures solved by *earlier* suites are reused too — or a cache opened
/// with [`SolveCache::with_store`](crate::SolveCache::with_store), so
/// structures solved by earlier *processes* are reused and new solves persist
/// for later ones; remember to flush such a cache at session end).
///
/// The summary's cache stats are the cache's counter deltas over this call;
/// when other threads use the same cache concurrently their traffic is
/// included in the delta.
///
/// **Duplicate names.**  [`BatchAnalysis::report`] looks reports up by name,
/// and the per-program cache accounting is keyed by program scope, so two
/// suite entries sharing a name would silently shadow each other.  Duplicates
/// are therefore detected up front and disambiguated: the second entry named
/// `gemm` reports as `gemm#2`, the third as `gemm#3`, … (guaranteed unique
/// against the caller's own names too), and `SuiteSummary::duplicate_names`
/// counts how many entries were renamed so callers can surface the hint.
pub fn analyze_suite_with(jobs: &[SuiteProgram], cache: &SolveCache) -> BatchAnalysis {
    analyze_suite_governed(jobs, cache, None, None)
}

/// [`analyze_suite_with`] under budgets: `program_budget` caps each program's
/// analysis individually, `suite_budget` caps the whole run.  Each program's
/// deadline is the *minimum* of its own budget and whatever remains of the
/// suite budget at the moment it starts, so a suite that runs out of time
/// degrades its in-flight and remaining programs instead of erroring.
/// Degraded programs complete with a sound partial bound
/// ([`ProgramAnalysis::degraded`]) and are counted in
/// [`SuiteSummary::degraded`] — they are *not* failures.  With both budgets
/// `None` this is exactly [`analyze_suite_with`].
pub fn analyze_suite_governed(
    jobs: &[SuiteProgram],
    cache: &SolveCache,
    program_budget: Option<Duration>,
    suite_budget: Option<Duration>,
) -> BatchAnalysis {
    if program_budget.is_none() && suite_budget.is_none() {
        return analyze_suite_inner(jobs, cache, &|job| {
            analyze_program_with_cache(&job.program, &job.opts, cache)
        });
    }
    let suite_deadline = suite_budget.map(Deadline::after);
    analyze_suite_inner(jobs, cache, &|job| {
        let budget = match (
            program_budget,
            suite_deadline.as_ref().and_then(|d| d.remaining()),
        ) {
            (Some(p), Some(s)) => Some(p.min(s)),
            (Some(p), None) => Some(p),
            (None, s) => s,
        };
        let deadline = budget.map(Deadline::after);
        analyze_program_governed(&job.program, &job.opts, cache, deadline.as_ref())
    })
}

/// Parse a `--timeout-ms` / `SOAP_TIMEOUT_MS`-style millisecond budget.
/// Strict in the spirit of [`crate::cache::parse_cache_shards`]: trimmed,
/// positive integer, anything else — including 0, which would mean "degrade
/// everything" and is never what the caller wants — is `None`.
pub fn parse_timeout_ms(raw: &str) -> Option<Duration> {
    let ms: u64 = raw.trim().parse().ok().filter(|&ms| ms > 0)?;
    Some(Duration::from_millis(ms))
}

/// The batch engine behind [`analyze_suite_with`], with the per-program
/// analysis injectable so the panic-isolation discipline is testable without
/// manufacturing a program whose real analysis panics.
fn analyze_suite_inner(
    jobs: &[SuiteProgram],
    cache: &SolveCache,
    analyze: &(dyn Fn(&SuiteProgram) -> Result<ProgramAnalysis, AnalysisError> + Sync),
) -> BatchAnalysis {
    let (report_names, duplicate_names) = disambiguated_names(jobs);
    let stats_before = cache.stats();
    // lint:allow(instant-now): suite deadline bookkeeping: wall-clock anchors the governed time budget
    let suite_start = Instant::now();
    let work: Vec<(&SuiteProgram, &String)> = jobs.iter().zip(report_names.iter()).collect();
    let reports: Vec<ProgramReport> = work
        .par_iter()
        .map(|&(job, name)| {
            // lint:allow(instant-now): per-program deadline bookkeeping: wall-clock anchors the governed time budget
            let start = Instant::now();
            let outcome = catch_outcome(|| analyze(job));
            ProgramReport {
                name: name.clone(),
                analysis_ms: start.elapsed().as_secs_f64() * 1e3,
                outcome,
            }
        })
        .collect();
    let wall_ms = suite_start.elapsed().as_secs_f64() * 1e3;
    let mut phases = PhaseTimings::default();
    for analysis in reports.iter().filter_map(|r| r.outcome.as_ref().ok()) {
        phases.accumulate(&analysis.phases);
    }
    let summary = SuiteSummary {
        programs: reports.len(),
        failures: reports.iter().filter(|r| r.outcome.is_err()).count(),
        duplicate_names,
        wall_ms,
        sum_program_ms: reports.iter().map(|r| r.analysis_ms).sum(),
        subgraphs_enumerated: reports
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok())
            .map(|a| a.solver.subgraphs_enumerated)
            .sum(),
        phases,
        cache: cache.stats().since(&stats_before),
        degraded: reports
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok())
            .filter(|a| a.degraded)
            .count(),
        arrays_deferred: reports
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok())
            .map(|a| a.arrays_deferred)
            .sum(),
    };
    BatchAnalysis { reports, summary }
}

/// Run one program's analysis with panic isolation: a panicking analysis
/// reports [`AnalysisError::Internal`] in its own [`ProgramReport`] — the
/// same per-program error discipline as a returned error — instead of
/// unwinding through the worker pool and killing the whole batch.
fn catch_outcome(
    analyze: impl FnOnce() -> Result<ProgramAnalysis, AnalysisError>,
) -> Result<ProgramAnalysis, AnalysisError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(analyze)).unwrap_or_else(|payload| {
        Err(AnalysisError::Internal(format!(
            "analysis panicked: {}",
            panic_message(&*payload)
        )))
    })
}

/// Report names for the suite entries, with duplicates disambiguated to
/// `name#k` (k = occurrence number, bumped past any identical caller-supplied
/// name), plus the number of entries that had to be renamed.
fn disambiguated_names(jobs: &[SuiteProgram]) -> (Vec<String>, usize) {
    use std::collections::{HashMap, HashSet};
    // Every caller-supplied name is reserved up front, so a rename can never
    // collide with a *later* entry's verbatim name (e.g. jobs `a, a, a#2`:
    // the duplicate skips `a#2` and becomes `a#3`).
    let mut taken: HashSet<String> = jobs.iter().map(|j| j.name.clone()).collect();
    let mut first_seen: HashSet<&str> = HashSet::new();
    let mut next_suffix: HashMap<&str, usize> = HashMap::new();
    let mut renamed = 0usize;
    let names = jobs
        .iter()
        .map(|job| {
            if first_seen.insert(job.name.as_str()) {
                return job.name.clone();
            }
            renamed += 1;
            let k = next_suffix.entry(job.name.as_str()).or_insert(2);
            let candidate = loop {
                let c = format!("{}#{k}", job.name);
                *k += 1;
                if !taken.contains(&c) {
                    break c;
                }
            };
            taken.insert(candidate.clone());
            candidate
        })
        .collect();
    (names, renamed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soap_ir::ProgramBuilder;

    fn matmul(name: &str, vars: [&str; 3]) -> Program {
        ProgramBuilder::new(name)
            .statement(|st| {
                st.loops(&[
                    (vars[0], "0", "N"),
                    (vars[1], "0", "N"),
                    (vars[2], "0", "N"),
                ])
                .update("C", &format!("{},{}", vars[0], vars[1]))
                .read("A", &format!("{},{}", vars[0], vars[2]))
                .read("B", &format!("{},{}", vars[2], vars[1]))
            })
            .build()
            .unwrap()
    }

    #[test]
    fn renamed_matmuls_hit_across_programs() {
        let jobs = vec![
            SuiteProgram::with_default_opts(matmul("mm1", ["i", "j", "k"])),
            SuiteProgram::with_default_opts(matmul("mm2", ["p", "q", "r"])),
        ];
        let batch = analyze_suite(&jobs);
        assert_eq!(batch.summary.programs, 2);
        assert_eq!(batch.summary.failures, 0);
        assert!(
            batch.summary.cache.cross_program_hits >= 1,
            "renamed matmul must be answered from the other program's entry: {:?}",
            batch.summary.cache
        );
        // Per-program summaries see their own traffic: the second program's
        // analysis reports the cross-program hit, the first reports none.
        let a = batch.report("mm1").unwrap().outcome.as_ref().unwrap();
        let b = batch.report("mm2").unwrap().outcome.as_ref().unwrap();
        assert_eq!(
            a.solver.cross_program_hits + b.solver.cross_program_hits,
            batch.summary.cache.cross_program_hits
        );
        // And the bounds are identical to standalone analyses.
        for (job, report) in jobs.iter().zip(&batch.reports) {
            let standalone = crate::analyze_program_with(&job.program, &job.opts).unwrap();
            let batched = report.outcome.as_ref().unwrap();
            assert_eq!(
                format!("{}", standalone.bound),
                format!("{}", batched.bound)
            );
        }
    }

    #[test]
    fn duplicate_suite_names_are_disambiguated() {
        // Two `mm` entries plus a caller-supplied literal `mm#2`: the
        // duplicate must not shadow either, so it becomes `mm#3`.
        let mut literal = matmul("mm", ["x", "y", "z"]);
        literal.name = "mm#2".to_string();
        let jobs = vec![
            SuiteProgram::with_default_opts(matmul("mm", ["i", "j", "k"])),
            SuiteProgram::with_default_opts(matmul("mm", ["p", "q", "r"])),
            SuiteProgram::with_default_opts(literal),
        ];
        let batch = analyze_suite(&jobs);
        let names: Vec<&str> = batch.reports.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["mm", "mm#3", "mm#2"]);
        assert_eq!(batch.summary.duplicate_names, 1);
        // Every report is now reachable by name — nothing shadowed.
        for name in names {
            assert!(batch.report(name).unwrap().outcome.is_ok(), "{name}");
        }
        // Unique names stay verbatim and report no duplicates.
        let unique = analyze_suite(&[SuiteProgram::with_default_opts(matmul(
            "only",
            ["i", "j", "k"],
        ))]);
        assert_eq!(unique.summary.duplicate_names, 0);
        assert_eq!(unique.reports[0].name, "only");
    }

    #[test]
    fn store_backed_suite_runs_warm_with_zero_misses() {
        let dir = std::env::temp_dir().join(format!("soap-batch-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let jobs = vec![
            SuiteProgram::with_default_opts(matmul("mm1", ["i", "j", "k"])),
            SuiteProgram::with_default_opts(matmul("mm2", ["p", "q", "r"])),
        ];
        let cold = {
            let cache = SolveCache::with_store(&dir).expect("store opens");
            let batch = analyze_suite_with(&jobs, &cache);
            assert!(batch.summary.cache.misses > 0);
            assert_eq!(batch.summary.cache.store_hits, 0);
            cache.flush_store().expect("flush succeeds");
            batch
        };
        let cache = SolveCache::with_store(&dir).expect("store reopens");
        let warm = analyze_suite_with(&jobs, &cache);
        assert_eq!(warm.summary.cache.misses, 0, "{:?}", warm.summary.cache);
        assert_eq!(warm.summary.cache.uncacheable, 0);
        // The warm run is answered from persisted *report* records — the
        // whole front half is skipped, so there is no solve-cache traffic at
        // all (both jobs are renamed twins sharing one structural key).
        assert_eq!(
            warm.summary.cache.report_hits, 2,
            "{:?}",
            warm.summary.cache
        );
        assert_eq!(warm.summary.cache.hits, 0);
        // A solve-only reopen of the same store exercises the solve-record
        // warm path instead: every model answered from the store, no report
        // traffic.
        let solve_only = SolveCache::with_store_solve_only(&dir).expect("store reopens");
        let via_models = analyze_suite_with(&jobs, &solve_only);
        assert_eq!(via_models.summary.cache.report_hits, 0);
        assert_eq!(via_models.summary.cache.misses, 0);
        assert!(via_models.summary.cache.store_hits > 0);
        // Byte-identical outputs, unsnapped floats included.
        for (c, w) in cold.reports.iter().zip(&warm.reports) {
            let (c, w) = (c.outcome.as_ref().unwrap(), w.outcome.as_ref().unwrap());
            assert_eq!(format!("{}", c.bound), format!("{}", w.bound));
            for (sc, sw) in c.subgraphs.iter().zip(&w.subgraphs) {
                assert_eq!(
                    sc.intensity.chi_coeff.to_bits(),
                    sw.intensity.chi_coeff.to_bits()
                );
                for ((_, a), (_, b)) in sc
                    .intensity
                    .tile_coeffs
                    .iter()
                    .zip(&sw.intensity.tile_coeffs)
                {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failing_programs_are_isolated() {
        use soap_ir::{ArrayAccess, IterationDomain, LinIndex, Statement};
        // A statement with an empty loop nest fails `Program::validate`, so
        // its analysis errors — the builder refuses to construct one, hence
        // assemble it directly.  The other programs of the suite must be
        // unaffected, and the failure must land in the report, not abort the
        // batch.
        let invalid = Program::new(
            "invalid",
            vec![Statement {
                name: "empty_nest".to_string(),
                domain: IterationDomain::new(vec![]),
                output: ArrayAccess::single("Z", vec![LinIndex::constant(0)]),
                inputs: vec![],
                is_update: false,
            }],
        );
        assert!(invalid.validate().is_err(), "fixture must be invalid");
        let jobs = vec![
            SuiteProgram::with_default_opts(matmul("ok", ["i", "j", "k"])),
            SuiteProgram::with_default_opts(invalid),
            SuiteProgram::with_default_opts(matmul("ok2", ["p", "q", "r"])),
        ];
        let batch = analyze_suite(&jobs);
        assert_eq!(batch.summary.programs, 3);
        assert_eq!(batch.summary.failures, 1);
        assert!(batch.report("ok").unwrap().outcome.is_ok());
        assert!(batch.report("ok2").unwrap().outcome.is_ok());
        let failure = &batch.report("invalid").unwrap().outcome;
        assert!(
            matches!(failure, Err(AnalysisError::InvalidStatement(_))),
            "expected an isolated InvalidStatement error, got {failure:?}"
        );
        // An init-only program, by contrast, analyzes successfully with
        // diagnostic notes (not an error) — both outcomes coexist in one
        // suite without affecting each other.
        let init_only = ProgramBuilder::new("init_only")
            .statement(|st| st.loops(&[("i", "0", "N")]).write("Z", "0"))
            .build()
            .unwrap();
        let batch = analyze_suite(&[SuiteProgram::with_default_opts(init_only)]);
        assert_eq!(batch.summary.failures, 0);
        let init = batch.report("init_only").unwrap().outcome.as_ref().unwrap();
        assert!(!init.notes.is_empty());
    }

    #[test]
    fn parse_timeout_is_strict() {
        assert_eq!(parse_timeout_ms("100"), Some(Duration::from_millis(100)));
        assert_eq!(parse_timeout_ms(" 5 "), Some(Duration::from_millis(5)));
        for bad in ["", "0", "-3", "1.5", "fast", "10ms"] {
            assert_eq!(parse_timeout_ms(bad), None, "input {bad:?}");
        }
    }

    #[test]
    fn exhausted_budget_degrades_instead_of_failing() {
        let jobs = vec![
            SuiteProgram::with_default_opts(matmul("mm1", ["i", "j", "k"])),
            SuiteProgram::with_default_opts(matmul("mm2", ["p", "q", "r"])),
        ];
        // A zero program budget is expired before any work starts, so every
        // cancellation trips at its deterministic commit point: the suite
        // must complete with degraded (not failed) reports and a zero bound.
        let batch = analyze_suite_governed(&jobs, &SolveCache::new(), Some(Duration::ZERO), None);
        assert_eq!(batch.summary.failures, 0, "degraded is not failure");
        assert_eq!(batch.summary.degraded, 2);
        assert!(batch.summary.arrays_deferred >= 2);
        for report in &batch.reports {
            let analysis = report.outcome.as_ref().expect("degraded, not failed");
            assert!(analysis.degraded);
            assert!(analysis.per_array.is_empty());
            assert!(
                analysis.notes.iter().any(|n| n.contains("degraded")),
                "notes must explain the degradation: {:?}",
                analysis.notes
            );
        }
        // With no budgets the governed entry point is exactly the ungoverned
        // one — byte-identical output and no degradation accounting.
        let ungoverned = analyze_suite_governed(&jobs, &SolveCache::new(), None, None);
        assert_eq!(ungoverned.summary.degraded, 0);
        assert_eq!(ungoverned.summary.arrays_deferred, 0);
        let baseline = analyze_suite(&jobs);
        for (a, b) in ungoverned.reports.iter().zip(&baseline.reports) {
            assert_eq!(
                format!("{}", a.outcome.as_ref().unwrap().bound),
                format!("{}", b.outcome.as_ref().unwrap().bound)
            );
        }
        // A generous budget changes nothing either.
        let generous = analyze_suite_governed(
            &jobs,
            &SolveCache::new(),
            Some(Duration::from_secs(3600)),
            Some(Duration::from_secs(3600)),
        );
        assert_eq!(generous.summary.degraded, 0);
        for (a, b) in generous.reports.iter().zip(&baseline.reports) {
            assert_eq!(
                format!("{}", a.outcome.as_ref().unwrap().bound),
                format!("{}", b.outcome.as_ref().unwrap().bound)
            );
        }
    }

    #[test]
    fn poisoned_program_does_not_kill_the_batch() {
        // A per-program analysis that *panics* (a bug, not an error return)
        // must be caught and reported as an isolated Internal error in its
        // own report; the other programs of the suite still complete, and the
        // suite accounting sees exactly one failure.  Inject the panic
        // through the analysis seam so the test does not depend on finding a
        // program that crashes the real pipeline.
        let jobs = vec![
            SuiteProgram::with_default_opts(matmul("ok", ["i", "j", "k"])),
            SuiteProgram::with_default_opts(matmul("poison", ["p", "q", "r"])),
            SuiteProgram::with_default_opts(matmul("ok2", ["x", "y", "z"])),
        ];
        let cache = SolveCache::new();
        let batch = analyze_suite_inner(&jobs, &cache, &|job| {
            if job.name == "poison" {
                panic!("injected analysis bug");
            }
            analyze_program_with_cache(&job.program, &job.opts, &cache)
        });
        assert_eq!(batch.summary.programs, 3);
        assert_eq!(batch.summary.failures, 1);
        assert!(batch.report("ok").unwrap().outcome.is_ok());
        assert!(batch.report("ok2").unwrap().outcome.is_ok());
        match &batch.report("poison").unwrap().outcome {
            Err(AnalysisError::Internal(msg)) => {
                assert!(msg.contains("injected analysis bug"), "message: {msg}");
            }
            other => panic!("expected an isolated Internal error, got {other:?}"),
        }
    }
}
