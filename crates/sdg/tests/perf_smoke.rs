//! Criterion-free performance smoke test: the full SDG analysis of a
//! 35-statement matmul chain (the paper's practical scaling limit) must
//! finish well inside a generous wall-clock budget even in debug builds.
//!
//! This is a CI tripwire against gross regressions on the enumeration /
//! merge / simplification hot paths, not a benchmark — the Criterion benches
//! and the `soap-bench` `perf` binary produce the real numbers.

use soap_sdg::{analyze_program_with, SdgOptions};
use std::time::{Duration, Instant};

#[path = "common/fixtures.rs"]
mod fixtures;
use fixtures::chain_of_matmuls;

#[test]
fn thirty_five_statement_chain_analyzes_within_budget() {
    // Generous: this takes well under 10 s in debug builds on a laptop-class
    // core; the budget only exists to catch order-of-magnitude regressions.
    const BUDGET: Duration = Duration::from_secs(120);
    let program = chain_of_matmuls(35);
    let opts = SdgOptions {
        max_subgraph_size: 3,
        max_subgraphs: 512,
        ..SdgOptions::default()
    };
    let start = Instant::now();
    let analysis = analyze_program_with(&program, &opts).expect("analysis succeeds");
    let elapsed = start.elapsed();
    assert!(
        elapsed < BUDGET,
        "35-statement chain took {elapsed:?} (budget {BUDGET:?}) — a hot path badly regressed"
    );
    // Sanity: every chain link got a Theorem-1 term and the bound evaluates.
    assert_eq!(analysis.per_array.len(), 35);
    let mut b = std::collections::BTreeMap::new();
    b.insert("N".to_string(), 512.0);
    b.insert("S".to_string(), 16384.0);
    let q = analysis.bound.eval(&b).expect("bound evaluates");
    assert!(q > 0.0);
}
